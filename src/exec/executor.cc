#include "exec/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"
#include "exec/batch.h"
#include "exec/bloom.h"
#include "exec/pipeline.h"
#include "exec/selection.h"
#include "fault/injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "shard/shard.h"
#include "sketch/hyperloglog.h"

namespace monsoon {

StatusOr<BoundTerm> BoundTerm::Bind(const UdfTerm& term, const Schema& schema,
                                    const UdfRegistry& registry) {
  BoundTerm bound;
  MONSOON_ASSIGN_OR_RETURN(bound.fn_, registry.Lookup(term.function));
  bound.arg_cols_.reserve(term.args.size());
  for (const auto& arg : term.args) {
    MONSOON_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(arg));
    bound.arg_cols_.push_back(col);
  }
  return bound;
}

namespace {

/// A predicate bound against a single (possibly concatenated) schema,
/// evaluated as a residual filter. Leaf scans attach evaluate-once cached
/// columns (the filter then never calls the UDF per row); join residuals
/// evaluate against transient concatenated rows and stay uncached.
struct BoundResidual {
  enum class Kind { kJoinEq, kJoinNeq, kSelectionEq };
  Kind kind;
  BoundTerm left;
  BoundTerm right;  // join kinds only
  Value constant;   // selection only
  CachedUdfColumnPtr left_col;   // indexes the leaf's source table
  CachedUdfColumnPtr right_col;  // join kinds only
  // Index of absolute row 0 in the cached columns: 0 for whole-table
  // columns, the shard's first row for shard-scoped columns (which store
  // their range at local slots — see UdfColumnCache::GetOrBuildShard).
  size_t col_base = 0;

  bool Eval(const Table& table, size_t row) const {
    if (left_col != nullptr) {
      const size_t i = row - col_base;
      switch (kind) {
        case Kind::kJoinEq:
          return CachedUdfColumn::Equal(*left_col, i, *right_col, i);
        case Kind::kJoinNeq:
          return !CachedUdfColumn::Equal(*left_col, i, *right_col, i);
        case Kind::kSelectionEq:
          return left_col->EqualsValue(i, constant);
      }
      return false;
    }
    Value l = left.Eval(table, row);
    switch (kind) {
      case Kind::kJoinEq:
        return l == right.Eval(table, row);
      case Kind::kJoinNeq:
        return l != right.Eval(table, row);
      case Kind::kSelectionEq:
        return l == constant;
    }
    return false;
  }
};

StatusOr<BoundResidual> BindResidual(const Predicate& pred, const Schema& schema,
                                     const UdfRegistry& registry) {
  BoundResidual residual;
  MONSOON_ASSIGN_OR_RETURN(residual.left, BoundTerm::Bind(pred.left, schema, registry));
  if (pred.kind == Predicate::Kind::kSelection) {
    residual.kind = BoundResidual::Kind::kSelectionEq;
    residual.constant = pred.constant;
  } else {
    residual.kind = pred.equality ? BoundResidual::Kind::kJoinEq
                                  : BoundResidual::Kind::kJoinNeq;
    MONSOON_ASSIGN_OR_RETURN(residual.right,
                             BoundTerm::Bind(*pred.right, schema, registry));
  }
  return residual;
}

/// Appends the concatenation of lt[li] and rt[ri] to `out` unless a
/// residual filter rejects it (the candidate is appended first so filters
/// can evaluate against the concatenated schema, then retracted).
void EmitIfPasses(Table* out, const Table& lt, size_t li, const Table& rt,
                  size_t ri, const std::vector<BoundResidual>& residual) {
  MONSOON_DCHECK(li < lt.num_rows() && ri < rt.num_rows())
      << "join candidate (" << li << ", " << ri << ") out of bounds";
  out->AppendConcatRow(lt, li, rt, ri);
  size_t row = out->num_rows() - 1;
  for (const auto& filter : residual) {
    if (!filter.Eval(*out, row)) {
      out->PopRow();
      return;
    }
  }
}

/// Morsel-driven operators run when a pool is attached and the input is
/// big enough that splitting pays for the merge.
bool WorthParallel(const ExecContext* ctx, size_t rows) {
  return ctx->pool() != nullptr && rows > ctx->morsel_size();
}

/// A cached UDF column only pays off when the expression can be scanned
/// again — i.e. its exact physical table is registered in the store (base
/// relations and previously materialized expressions that later plan
/// trees reference as leaves). A fresh intermediate (a filtered leaf or a
/// join output consumed inline) exists only for the current operator, so
/// building a column over it would be a pure extra pass that can never
/// hit; those read paths fall back to per-row evaluation.
bool StoreResident(const MaterializedStore& store, const MaterializedExpr& expr) {
  auto stored = store.Lookup(expr.sig);
  return stored.ok() && (*stored)->table.get() == expr.table.get();
}

/// A transient fault while building an evaluate-once column is not fatal
/// to the query: the caller falls back to per-row evaluation, which is
/// accounting-identical (the cache is invisible to the cost model). Hard
/// errors (type mismatches, budget) still propagate, as does any error
/// once the query's cancellation token has tripped — a deadline must
/// abort, not degrade.
StatusOr<CachedUdfColumnPtr> TolerateCacheFault(
    ExecContext* ctx, StatusOr<CachedUdfColumnPtr> col) {
  static obs::Counter* const dropped_metric =
      obs::Registry::Global().GetCounter("faults.cache_fills_dropped");
  if (col.ok()) return col;
  bool query_dead =
      ctx->cancel_token() != nullptr && ctx->cancel_token()->cancelled();
  if (query_dead || !col.status().IsTransient()) return col;
  dropped_metric->Add(1);
  return CachedUdfColumnPtr();
}

/// Resolves the shard layout a pass iterates for an input of `rows` rows:
/// the materialized expression's own hash-range map when it matches both
/// the table and the configured shard count, else an even contiguous
/// split. The per-shard accounting invariant holds for ANY contiguous
/// decomposition (DESIGN.md §15), so the fallback is always correct — it
/// only loses hash-range placement.
shard::ShardMapPtr ResolveShardMap(const shard::ShardMapPtr& hint, size_t rows,
                                   size_t num_shards) {
  if (hint != nullptr && hint->num_shards() == num_shards &&
      hint->total_rows() == rows) {
    return hint;
  }
  return shard::EvenMap(rows, num_shards);
}

/// Shard map describing the output a sharded pass merged: offsets are the
/// cumulative per-shard output sizes, so downstream sharded passes split
/// the intermediate along the boundaries its producer emitted (a function
/// of shard contents only — independent of thread count and recovery).
shard::ShardMapPtr MapFromShardOutputs(const std::vector<Table>& locals) {
  auto map = std::make_shared<shard::ShardMap>();
  map->offsets.reserve(locals.size() + 1);
  map->offsets.push_back(0);
  for (const Table& local : locals) {
    map->offsets.push_back(map->offsets.back() + local.num_rows());
  }
  return map;
}

constexpr uint64_t kJoinHashSeed = 0xabcdef0123456789ULL;
/// Partition count for the parallel hash join's partitioned build. Fixed
/// (not thread-derived) so the output is bit-identical across thread
/// counts; selected from the hash's top bits, which the per-partition
/// unordered_multimap (bottom-bit based) does not reuse.
constexpr size_t kBuildPartitions = 64;
constexpr int kBuildPartitionShift = 58;  // 64 - log2(kBuildPartitions)

// ---------------------------------------------------------------------------
// Batch pipeline operators (DESIGN.md §12). batch_size == 1 drives the same
// operators with one-row batches, which reproduces the row-at-a-time seed
// executor exactly — there is no separate legacy code path to diverge from.
// ---------------------------------------------------------------------------

/// Narrows the batch to rows satisfying `pass` (absolute row ids). The
/// first filter scans the whole range and materializes the selection;
/// later filters compact the selection in place, so a conjunction touches
/// each row once per filter it survives to — the row path's short-circuit
/// evaluation set, just column-at-a-time.
template <typename Pred>
void RefineSelection(Batch* batch, Pred&& pass) {
  if (!batch->filtered) {
    batch->sel.Reserve(batch->end - batch->begin);
    for (size_t row = batch->begin; row < batch->end; ++row) {
      if (pass(row)) batch->sel.Append(static_cast<uint32_t>(row));
    }
    batch->filtered = true;
    return;
  }
  uint32_t* rows = batch->sel.mutable_data();
  const size_t n = batch->sel.size();
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = rows[i];
    if (pass(row)) rows[w++] = row;
  }
  batch->sel.Truncate(w);
}

/// Applies one bound residual to the batch's selection. Cached filters run
/// type-specialized loops over the flat columns (mirroring EqualsValue /
/// CachedUdfColumn::Equal exactly, hash-first for strings); uncached
/// filters fall back to per-row evaluation.
void ApplyResidualBatch(const BoundResidual& f, Batch* batch) {
  const Table& in = *batch->table;
  if (f.left_col == nullptr) {
    RefineSelection(batch, [&](size_t row) { return f.Eval(in, row); });
    return;
  }
  const CachedUdfColumn& lcol = *f.left_col;
  // Shard-scoped columns store their range at local slots; `base` shifts
  // the batch's absolute rows into them (0 for whole-table columns).
  const size_t base = f.col_base;
  if (f.kind == BoundResidual::Kind::kSelectionEq) {
    if (f.constant.type() != lcol.type()) {
      RefineSelection(batch, [](size_t) { return false; });
      return;
    }
    switch (lcol.type()) {
      case ValueType::kInt64: {
        const int64_t want = f.constant.AsInt64();
        const int64_t* data = lcol.Int64Data();
        RefineSelection(batch,
                        [&](size_t row) { return data[row - base] == want; });
        return;
      }
      case ValueType::kDouble: {
        const double want = f.constant.AsDouble();
        const double* data = lcol.DoubleData();
        RefineSelection(batch,
                        [&](size_t row) { return data[row - base] == want; });
        return;
      }
      case ValueType::kString: {
        const std::string& want = f.constant.AsString();
        const uint64_t want_hash = HashString(want);
        const uint64_t* hashes = lcol.HashData();
        const std::string* strs = lcol.StringData();
        RefineSelection(batch, [&](size_t row) {
          return hashes[row - base] == want_hash && strs[row - base] == want;
        });
        return;
      }
    }
    return;
  }
  const bool keep_equal = f.kind == BoundResidual::Kind::kJoinEq;
  const CachedUdfColumn& rcol = *f.right_col;
  if (lcol.type() != rcol.type()) {
    // Equal() is false across types on every row.
    RefineSelection(batch, [keep_equal](size_t) { return !keep_equal; });
    return;
  }
  switch (lcol.type()) {
    case ValueType::kInt64: {
      const int64_t* a = lcol.Int64Data();
      const int64_t* b = rcol.Int64Data();
      RefineSelection(batch, [&](size_t row) {
        return (a[row - base] == b[row - base]) == keep_equal;
      });
      return;
    }
    case ValueType::kDouble: {
      const double* a = lcol.DoubleData();
      const double* b = rcol.DoubleData();
      RefineSelection(batch, [&](size_t row) {
        return (a[row - base] == b[row - base]) == keep_equal;
      });
      return;
    }
    case ValueType::kString: {
      const uint64_t* ha = lcol.HashData();
      const uint64_t* hb = rcol.HashData();
      const std::string* sa = lcol.StringData();
      const std::string* sb = rcol.StringData();
      RefineSelection(batch, [&](size_t row) {
        return (ha[row - base] == hb[row - base] &&
                sa[row - base] == sb[row - base]) == keep_equal;
      });
      return;
    }
  }
}

/// Stateless filter stage, shared across morsels. Fires the per-row fault
/// point over the whole range first (firing is a pure function of the
/// coordinate, so hoisting it out of the filter loops leaves fault
/// behavior identical to the row path), then refines the selection one
/// filter at a time.
class FilterOperator : public PipelineOperator {
 public:
  explicit FilterOperator(const std::vector<BoundResidual>* filters)
      : filters_(filters) {}
  const char* name() const override { return "filter"; }

  Status ProcessBatch(Batch* batch, ExecContext* /*ctx*/) override {
    for (size_t row = batch->begin; row < batch->end; ++row) {
      MONSOON_FAULT_POINT("exec.udf_eval.filter", row);
    }
    for (const auto& filter : *filters_) {
      ApplyResidualBatch(filter, batch);
      if (batch->sel.empty()) break;
    }
    return Status::OK();
  }

 private:
  const std::vector<BoundResidual>* filters_;
};

/// Sink stage: gathers the batch's surviving rows into a Table — the whole
/// range column-wise when no filter ran, a selection-vector gather
/// otherwise. One per morsel (the destination is morsel-local).
class GatherOperator : public PipelineOperator {
 public:
  explicit GatherOperator(Table* dst) : dst_(dst) {}
  const char* name() const override { return "gather"; }

  Status ProcessBatch(Batch* batch, ExecContext* /*ctx*/) override {
    // The leaf charges the scan's whole input range before the pipeline
    // runs (work == rows examined, not rows kept), so the sink appends
    // without touching the counters: charging here would double-count.
    if (!batch->filtered) {
      dst_->AppendRangeFrom(*batch->table, batch->begin,  // NOLINT(monsoon-analyze-accounting)
                            batch->end);
    } else if (!batch->sel.empty()) {
      dst_->AppendSelectedFrom(*batch->table, batch->sel.data(),  // NOLINT(monsoon-analyze-accounting)
                               batch->sel.size());
    }
    return Status::OK();
  }

 private:
  Table* dst_;
};

/// Σ sink: folds the batch's rows into one HLL per term — precomputed
/// hashes from the evaluate-once column when available, per-row evaluation
/// otherwise (each value is consumed exactly once, so there is nothing to
/// unbox ahead of time).
class SigmaOperator : public PipelineOperator {
 public:
  /// `col_base` is the cached columns' index of absolute row 0 (the
  /// shard's first row for shard-scoped columns, 0 for whole-table ones).
  SigmaOperator(const std::vector<std::pair<int, BoundTerm>>* terms,
                const std::vector<CachedUdfColumnPtr>* cols,
                std::vector<HyperLogLog>* sketches, size_t col_base = 0)
      : terms_(terms), cols_(cols), sketches_(sketches), col_base_(col_base) {}
  const char* name() const override { return "sigma"; }

  Status ProcessBatch(Batch* batch, ExecContext* /*ctx*/) override {
    const Table& table = *batch->table;
    const size_t b = batch->begin;
    const size_t e = batch->end;
    for (size_t row = b; row < e; ++row) {
      MONSOON_FAULT_POINT("exec.udf_eval.sigma", row);
    }
    for (size_t t = 0; t < terms_->size(); ++t) {
      HyperLogLog& sketch = (*sketches_)[t];
      const CachedUdfColumnPtr& col = (*cols_)[t];
      if (col != nullptr) {
        const FlatView v = FlatView::Of(*col);
        for (size_t row = b; row < e; ++row) {
          sketch.AddHash(v.HashAt(row - col_base_));
        }
      } else {
        const BoundTerm& bound = (*terms_)[t].second;
        for (size_t row = b; row < e; ++row) {
          sketch.AddHash(bound.Eval(table, row).Hash());
        }
      }
    }
    return Status::OK();
  }

 private:
  const std::vector<std::pair<int, BoundTerm>>* terms_;
  const std::vector<CachedUdfColumnPtr>* cols_;
  std::vector<HyperLogLog>* sketches_;
  size_t col_base_;
};

/// acc[i] = HashCombine(acc[i], hash of view[(begin + i) - base]) for i in
/// [0, end - begin). `base` is the view's index of absolute row 0: 0 for
/// whole-side views, batch->begin for batch-local fills. Callers invoke
/// this once per key column in k-ascending order, which reproduces the row
/// path's per-row HashCombine chain bit-for-bit.
void CombineKeyHashes(const FlatView& v, size_t begin, size_t end, size_t base,
                      uint64_t* acc) {
  switch (v.type) {
    case ValueType::kInt64:
      for (size_t row = begin; row < end; ++row) {
        acc[row - begin] =
            HashCombine(acc[row - begin], HashInt64Value(v.i64[row - base]));
      }
      return;
    case ValueType::kDouble:
      for (size_t row = begin; row < end; ++row) {
        acc[row - begin] =
            HashCombine(acc[row - begin], HashDoubleValue(v.dbl[row - base]));
      }
      return;
    case ValueType::kString:
      for (size_t row = begin; row < end; ++row) {
        acc[row - begin] = HashCombine(acc[row - begin], v.str_hash[row - base]);
      }
      return;
  }
}

/// Build-side key stage of the hash join: fires the join_build fault point
/// for the batch, fills uncached key columns, and writes each row's
/// composite key hash. Shared across morsels — morsels write disjoint row
/// ranges of the same whole-side arrays.
class HashBuildOperator : public PipelineOperator {
 public:
  HashBuildOperator(const std::vector<const BoundTerm*>* terms,
                    bool keys_cached, std::vector<FlatColumn>* flat,
                    const std::vector<FlatView>* views,
                    std::vector<uint64_t>* hashes)
      : terms_(terms),
        keys_cached_(keys_cached),
        flat_(flat),
        views_(views),
        hashes_(hashes) {}
  const char* name() const override { return "hash-build"; }

  Status ProcessBatch(Batch* batch, ExecContext* /*ctx*/) override {
    const size_t b = batch->begin;
    const size_t e = batch->end;
    for (size_t row = b; row < e; ++row) {
      MONSOON_FAULT_POINT("exec.udf_eval.join_build", row);
    }
    if (!keys_cached_) {
      for (size_t k = 0; k < terms_->size(); ++k) {
        MONSOON_RETURN_IF_ERROR(
            (*flat_)[k].Fill(*(*terms_)[k], *batch->table, b, e, b));
      }
    }
    uint64_t* acc = hashes_->data() + b;
    std::fill(acc, acc + (e - b), kJoinHashSeed);
    for (size_t k = 0; k < views_->size(); ++k) {
      CombineKeyHashes((*views_)[k], b, e, /*base=*/0, acc);
    }
    return Status::OK();
  }

 private:
  const std::vector<const BoundTerm*>* terms_;
  bool keys_cached_;
  std::vector<FlatColumn>* flat_;
  const std::vector<FlatView>* views_;
  std::vector<uint64_t>* hashes_;
};

/// Serial build sink: appends (hash, row) pairs in row order, preserving
/// the row path's multimap insertion order — and therefore the candidate
/// enumeration order the probe observes.
class IndexInsertOperator : public PipelineOperator {
 public:
  IndexInsertOperator(const std::vector<uint64_t>* hashes,
                      std::unordered_multimap<uint64_t, size_t>* index)
      : hashes_(hashes), index_(index) {}
  const char* name() const override { return "hash-insert"; }

  Status ProcessBatch(Batch* batch, ExecContext* /*ctx*/) override {
    for (size_t row = batch->begin; row < batch->end; ++row) {
      index_->emplace((*hashes_)[row], row);
    }
    return Status::OK();
  }

 private:
  const std::vector<uint64_t>* hashes_;
  std::unordered_multimap<uint64_t, size_t>* index_;
};

/// Probe stage of the hash join. Per batch: fills uncached probe-key
/// columns, computes composite hashes column-wise, probes per row (fault
/// point, work charge, Bloom pre-check, per-candidate charge and
/// hash-confirm), and emits matched pairs column-wise — straight into the
/// output, or through a residual staging table whose survivors gather in.
/// The per-row charge sequence is exactly the row path's, so budget trips
/// land on the same work unit; the Bloom filter stores exactly the hashes
/// in the index, so a reject only skips an equal_range that would have
/// found nothing — zero candidates charged either way.
class HashProbeOperator : public PipelineOperator {
 public:
  struct Spec {
    const Table* lt = nullptr;
    const Table* rt = nullptr;
    bool build_left = false;
    bool keys_cached = false;
    const std::vector<const BoundTerm*>* probe_terms = nullptr;
    const std::vector<FlatView>* build_views = nullptr;
    const std::vector<FlatView>* probe_views = nullptr;  // cached keys only
    // Exactly one of the two index shapes is set (serial / partitioned).
    const std::unordered_multimap<uint64_t, size_t>* index = nullptr;
    const std::vector<std::unordered_multimap<uint64_t, size_t>>* partitions =
        nullptr;
    const JoinBloomFilter* bloom = nullptr;  // null when batching is off
    const std::vector<BoundResidual>* residual = nullptr;
    const Schema* out_schema = nullptr;
  };

  /// `work_tally` null = serial mode (every unit charged through ctx, so
  /// the budget trips mid-probe exactly as the row path does); non-null =
  /// parallel mode (units accumulate morsel-locally, the morsel loop
  /// flushes to the shared tally at its barrier).
  HashProbeOperator(const Spec& spec, Table* dst, uint64_t* work_tally)
      : s_(spec),
        dst_(dst),
        work_tally_(work_tally),
        candidates_(*s_.out_schema) {}
  const char* name() const override { return "hash-probe"; }

  Status ProcessBatch(Batch* batch, ExecContext* ctx) override {
    static obs::Counter* const bloom_checks_metric =
        obs::Registry::Global().GetCounter("exec.bloom_checks");
    static obs::Counter* const bloom_rejects_metric =
        obs::Registry::Global().GetCounter("exec.bloom_rejects");

    const Table& probe = *batch->table;
    const size_t begin = batch->begin;
    const size_t end = batch->end;
    const size_t n = end - begin;
    const size_t nkeys = s_.probe_terms->size();

    // Composite key hashes for the whole batch, column-wise.
    const std::vector<FlatView>* views;
    size_t base;
    if (s_.keys_cached) {
      views = s_.probe_views;
      base = 0;
    } else {
      probe_flat_.resize(nkeys);
      probe_flat_views_.clear();
      for (size_t k = 0; k < nkeys; ++k) {
        const BoundTerm& term = *(*s_.probe_terms)[k];
        probe_flat_[k].Resize(term.result_type(), n);
        MONSOON_RETURN_IF_ERROR(probe_flat_[k].Fill(term, probe, begin, end, 0));
        probe_flat_views_.push_back(FlatView::Of(probe_flat_[k]));
      }
      views = &probe_flat_views_;
      base = begin;
    }
    hashes_.assign(n, kJoinHashSeed);
    for (size_t k = 0; k < nkeys; ++k) {
      CombineKeyHashes((*views)[k], begin, end, base, hashes_.data());
    }

    match_build_.clear();
    match_probe_.clear();
    uint64_t bloom_checked = 0;
    uint64_t bloom_rejected = 0;
    for (size_t i = 0; i < n; ++i) {
      const size_t row = begin + i;
      MONSOON_FAULT_POINT("exec.udf_eval.join_probe", row);
      if (work_tally_ != nullptr) {
        ++*work_tally_;
      } else {
        MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(1));
      }
      const uint64_t h = hashes_[i];
      if (s_.bloom != nullptr) {
        ++bloom_checked;
        if (!s_.bloom->MayContain(h)) {
          ++bloom_rejected;
          continue;
        }
      }
      const auto& index = s_.partitions != nullptr
                              ? (*s_.partitions)[h >> kBuildPartitionShift]
                              : *s_.index;
      auto [it, last] = index.equal_range(h);
      for (; it != last; ++it) {
        if (work_tally_ != nullptr) {
          ++*work_tally_;
        } else {
          MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(1));
        }
        const size_t build_row = it->second;
        bool match = true;
        for (size_t k = 0; k < nkeys; ++k) {
          if (!FlatView::Equal((*s_.build_views)[k], build_row, (*views)[k],
                               row - base)) {
            match = false;
            break;
          }
        }
        if (match) {
          match_build_.push_back(static_cast<uint32_t>(build_row));
          match_probe_.push_back(static_cast<uint32_t>(row));
        }
      }
    }
    if (bloom_checked != 0) {
      bloom_checks_metric->Add(bloom_checked);
      bloom_rejects_metric->Add(bloom_rejected);
    }

    const size_t nmatch = match_probe_.size();
    if (nmatch == 0) return Status::OK();
    const uint32_t* lrows =
        s_.build_left ? match_build_.data() : match_probe_.data();
    const uint32_t* rrows =
        s_.build_left ? match_probe_.data() : match_build_.data();
    // nmatch > 0 implies the probe loop above ran and charged every probe
    // row and index hit (via the morsel tally or ChargeWork); the analyzer
    // cannot see that the zero-iteration path has nmatch == 0.
    if (s_.residual->empty()) {
      dst_->AppendConcatSelected(*s_.lt, lrows, *s_.rt, rrows,  // NOLINT(monsoon-analyze-accounting)
                                 nmatch);
      return Status::OK();
    }
    // Residual filters see the concatenated schema: candidates stage in a
    // scratch table (allocation reused across batches) and survivors
    // gather into the output. The row path appended then retracted; the
    // accepted row sequence and filter evaluation set are identical.
    candidates_.ClearRows();
    candidates_.AppendConcatSelected(*s_.lt, lrows, *s_.rt, rrows,  // NOLINT(monsoon-analyze-accounting): scratch staging, charged with the probe rows above
                                     nmatch);
    keep_.Clear();
    keep_.Reserve(nmatch);
    for (size_t i = 0; i < nmatch; ++i) {
      bool pass = true;
      for (const auto& filter : *s_.residual) {
        if (!filter.Eval(candidates_, i)) {
          pass = false;
          break;
        }
      }
      if (pass) keep_.Append(static_cast<uint32_t>(i));
    }
    if (!keep_.empty()) {
      dst_->AppendSelectedFrom(candidates_, keep_.data(),  // NOLINT(monsoon-analyze-accounting): survivors of rows charged in the probe loop
                               keep_.size());
    }
    return Status::OK();
  }

 private:
  Spec s_;
  Table* dst_;
  uint64_t* work_tally_;
  std::vector<FlatColumn> probe_flat_;       // uncached batch-local keys
  std::vector<FlatView> probe_flat_views_;
  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> match_build_;
  std::vector<uint32_t> match_probe_;
  Table candidates_;
  SelectionVector keep_;
};

}  // namespace

Executor::Executor(const QuerySpec& query, const UdfRegistry* registry,
                   Options options)
    : query_(query), registry_(registry), options_(options) {}

StatusOr<ExecResult> Executor::Execute(const PlanNode::Ptr& plan,
                                       MaterializedStore* store,
                                       ExecContext* ctx) const {
  static obs::Counter* const cache_hits_metric =
      obs::Registry::Global().GetCounter("exec.udf_cache_hits");
  static obs::Counter* const cache_misses_metric =
      obs::Registry::Global().GetCounter("exec.udf_cache_misses");

  obs::TraceSpan span("exec", "execute");
  const UdfCacheStats before = store->udf_cache()->stats();
  ExecResult result;
  StatusOr<MaterializedExpr> output = ExecuteNode(plan, store, ctx, &result);
  // Cache counter deltas survive even failed runs (timeouts report the
  // partial cache activity alongside the partial work accounting).
  const UdfCacheStats after = store->udf_cache()->stats();
  ctx->AddUdfCacheDelta(after.hits - before.hits, after.misses - before.misses,
                        after.evictions - before.evictions, after.bytes_in_use);
  cache_hits_metric->Add(after.hits - before.hits);
  cache_misses_metric->Add(after.misses - before.misses);
  if (span.enabled()) {
    uint64_t hits = after.hits - before.hits;
    uint64_t lookups = hits + (after.misses - before.misses);
    span.Arg("udf_cache_hits", hits)
        .Arg("udf_cache_hit_ratio",
             lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups))
        .Arg("ok", output.ok());
  }
  MONSOON_RETURN_IF_ERROR(output.status());
  result.output = std::move(output).value();
  store->Put(result.output);
  return result;
}

StatusOr<MaterializedExpr> Executor::ExecuteNode(const PlanNode::Ptr& node,
                                                 MaterializedStore* store,
                                                 ExecContext* ctx,
                                                 ExecResult* result) const {
  switch (node->kind()) {
    case PlanNode::Kind::kLeaf: {
      MONSOON_ASSIGN_OR_RETURN(MaterializedExpr out, ExecuteLeaf(node, store, ctx));
      result->observed_counts.emplace_back(out.sig, out.table->num_rows());
      return out;
    }
    case PlanNode::Kind::kJoin: {
      MONSOON_ASSIGN_OR_RETURN(MaterializedExpr left,
                               ExecuteNode(node->left(), store, ctx, result));
      MONSOON_ASSIGN_OR_RETURN(MaterializedExpr right,
                               ExecuteNode(node->right(), store, ctx, result));
      MONSOON_ASSIGN_OR_RETURN(
          MaterializedExpr out,
          ExecuteJoin(node, std::move(left), std::move(right), store, ctx));
      result->observed_counts.emplace_back(out.sig, out.table->num_rows());
      return out;
    }
    case PlanNode::Kind::kStatsCollect: {
      static obs::Counter* const degraded_metric =
          obs::Registry::Global().GetCounter("faults.degraded_sigma");
      MONSOON_ASSIGN_OR_RETURN(MaterializedExpr child,
                               ExecuteNode(node->child(), store, ctx, result));
      Status sigma =
          CollectStats(child, store, ctx, &result->observed_distincts);
      if (!sigma.ok()) {
        // Graceful degradation: a Σ pass lost to a transient fault or a
        // per-UDF timeout is skipped, not fatal — the MDP simply plans
        // that d(F, r|_s) from the spike-and-slab prior. Budget trips,
        // hard errors, and anything after the query deadline/cancel
        // tripped still abort (CollectStats charges at its end, so a
        // failed pass deterministically charges nothing).
        bool query_dead = ctx->cancel_token() != nullptr &&
                          ctx->cancel_token()->cancelled();
        if (query_dead || !sigma.IsTransient()) return sigma;
        degraded_metric->Add(1);
        result->degraded.push_back(
            std::move(sigma).WithContext("collecting Σ statistics")
                .ToString());
      }
      return child;
    }
  }
  return Status::Internal("unknown plan node kind");
}

StatusOr<MaterializedExpr> Executor::ExecuteLeaf(const PlanNode::Ptr& node,
                                                 MaterializedStore* store,
                                                 ExecContext* ctx) const {
  static obs::Counter* const scan_ops_metric =
      obs::Registry::Global().GetCounter("exec.scan_ops");
  static obs::Histogram* const scan_rows_metric =
      obs::Registry::Global().GetHistogram("exec.scan_rows_in");

  MONSOON_ASSIGN_OR_RETURN(const MaterializedExpr* source,
                           store->Lookup(node->source()));
  scan_ops_metric->Add(1);
  scan_rows_metric->Observe(source->table->num_rows());
  obs::TraceSpan span("exec", "scan");
  span.Arg("rows_in", static_cast<uint64_t>(source->table->num_rows()))
      .Arg("preds", static_cast<uint64_t>(node->pred_ids().size()));
  // Reading the materialized input costs c(source) objects (Sec. 4.4).
  MONSOON_RETURN_IF_ERROR(ctx->Charge(source->table->num_rows()));
  if (node->pred_ids().empty()) {
    span.Arg("rows_out", static_cast<uint64_t>(source->table->num_rows()));
    return *source;
  }

  const bool sharded = ctx->num_shards() > 1;
  std::vector<BoundResidual> filters;
  filters.reserve(node->pred_ids().size());
  // (left, right-or--1) term ids per filter: the sharded path looks up
  // shard-scoped cached columns inside each shard body.
  std::vector<std::pair<int, int>> filter_terms;
  filter_terms.reserve(node->pred_ids().size());
  for (int pred_id : node->pred_ids()) {
    const Predicate& pred = query_.predicate(pred_id);
    MONSOON_ASSIGN_OR_RETURN(BoundResidual residual,
                             BindResidual(pred, source->schema, *registry_));
    filter_terms.emplace_back(
        pred.left.term_id,
        pred.kind == Predicate::Kind::kSelection ? -1 : pred.right->term_id);
    // Leaf residuals evaluate over the source expression itself, so the
    // store's evaluate-once columns apply positionally. Join-kind filters
    // need both sides cached to skip per-row evaluation. Sharded scans
    // bind their columns per shard instead (inside the supervised body,
    // so a killed attempt's partial fills are discarded with it).
    UdfColumnCache* cache = store->udf_cache();
    if (!sharded && cache->enabled()) {
      MONSOON_ASSIGN_OR_RETURN(
          residual.left_col,
          TolerateCacheFault(
              ctx, cache->GetOrBuild(source->sig, pred.left.term_id,
                                     residual.left, source->table, ctx->pool(),
                                     ctx->morsel_size(), ctx->cancel_token())));
      if (residual.kind != BoundResidual::Kind::kSelectionEq &&
          residual.left_col != nullptr) {
        MONSOON_ASSIGN_OR_RETURN(
            residual.right_col,
            TolerateCacheFault(
                ctx, cache->GetOrBuild(source->sig, pred.right->term_id,
                                       residual.right, source->table,
                                       ctx->pool(), ctx->morsel_size(),
                                       ctx->cancel_token())));
        if (residual.right_col == nullptr) residual.left_col = nullptr;
      }
    }
    filters.push_back(std::move(residual));
  }

  auto out = std::make_shared<Table>(source->schema);
  const Table& in = *source->table;
  // FilterOperator fires the per-row fault point with the global input
  // index as its coordinate, so the firing site is the same at every
  // thread count and batch size.
  FilterOperator filter_op(&filters);
  shard::ShardMapPtr out_map;
  if (sharded) {
    // Sharded scan under the shard supervisor: each shard drives its own
    // pipeline (with shard-scoped evaluate-once columns) into a local
    // table committed only when the attempt succeeds. Locals merge in
    // shard order, so the output is a fixed function of shard contents —
    // independent of thread count and of any recovered kill.
    shard::ShardMapPtr map =
        ResolveShardMap(source->shards, in.num_rows(), ctx->num_shards());
    std::vector<Table> locals(map->num_shards(), Table(source->schema));
    UdfColumnCache* cache = store->udf_cache();
    shard::ShardRunStats stats;
    Status run = shard::RunSharded(
        ctx->pool(), ctx->cancel_token(), *map, shard::kShardExecPoint,
        [&](size_t s, size_t begin, size_t end, uint32_t attempt) -> Status {
          std::vector<BoundResidual> local_filters = filters;
          if (cache->enabled()) {
            for (size_t f = 0; f < local_filters.size(); ++f) {
              BoundResidual& lf = local_filters[f];
              MONSOON_ASSIGN_OR_RETURN(
                  lf.left_col,
                  TolerateCacheFault(
                      ctx, cache->GetOrBuildShard(
                               source->sig, filter_terms[f].first, lf.left,
                               source->table, begin, end, ctx->cancel_token())));
              if (lf.kind != BoundResidual::Kind::kSelectionEq &&
                  lf.left_col != nullptr) {
                MONSOON_ASSIGN_OR_RETURN(
                    lf.right_col,
                    TolerateCacheFault(
                        ctx, cache->GetOrBuildShard(source->sig,
                                                    filter_terms[f].second,
                                                    lf.right, source->table,
                                                    begin, end,
                                                    ctx->cancel_token())));
                if (lf.right_col == nullptr) lf.left_col = nullptr;
              }
              lf.col_base = begin;
            }
          }
          FilterOperator shard_filter_op(&local_filters);
          Table attempt_local(source->schema);
          GatherOperator gather(&attempt_local);
          Pipeline pipeline;
          pipeline.Add(&shard_filter_op).Add(&gather);
          const size_t mid = begin + (end - begin) / 2;
          MONSOON_RETURN_IF_ERROR(pipeline.Run(in, begin, mid, ctx));
          // Mid-pass kill site: a fired fault discards attempt_local (and
          // the attempt's un-published cache fills) before anything
          // commits, so the retry re-reads exactly this shard.
          MONSOON_RETURN_IF_ERROR(
              fault::FireAttempt(shard::kShardExecPoint, s, attempt));
          MONSOON_RETURN_IF_ERROR(pipeline.Run(in, mid, end, ctx));
          locals[s] = std::move(attempt_local);
          return Status::OK();
        },
        &stats);
    ctx->AddShardStats(stats);
    MONSOON_RETURN_IF_ERROR(run);
    out_map = MapFromShardOutputs(locals);
    for (Table& local : locals) out->TakeRowsFrom(&local);
  } else if (WorthParallel(ctx, in.num_rows())) {
    // Morsel-driven scan: each morsel drives its own pipeline into a local
    // table; the barrier concatenates them in morsel order, so the output
    // row order is identical to the serial scan's.
    size_t num_morsels = parallel::NumMorsels(in.num_rows(), ctx->morsel_size());
    std::vector<Table> locals(num_morsels, Table(source->schema));
    MONSOON_RETURN_IF_ERROR(parallel::ParallelFor(
        ctx->pool(), in.num_rows(), ctx->morsel_size(), ctx->cancel_token(),
        [&](size_t m, size_t begin, size_t end) {
          MONSOON_DCHECK(m < locals.size());
          GatherOperator gather(&locals[m]);
          return Pipeline().Add(&filter_op).Add(&gather).Run(in, begin, end,
                                                             ctx);
        }));
    for (Table& local : locals) out->TakeRowsFrom(&local);
  } else {
    GatherOperator gather(out.get());
    MONSOON_RETURN_IF_ERROR(
        Pipeline().Add(&filter_op).Add(&gather).Run(in, 0, in.num_rows(), ctx));
  }

  span.Arg("rows_out", static_cast<uint64_t>(out->num_rows()));
  MaterializedExpr result;
  result.sig = node->output_sig();
  result.schema = source->schema;
  result.table = std::move(out);
  result.shards = std::move(out_map);
  return result;
}

StatusOr<MaterializedExpr> Executor::ExecuteJoin(const PlanNode::Ptr& node,
                                                 MaterializedExpr left,
                                                 MaterializedExpr right,
                                                 MaterializedStore* store,
                                                 ExecContext* ctx) const {
  static obs::Counter* const join_ops_metric =
      obs::Registry::Global().GetCounter("exec.join_ops");
  static obs::Histogram* const join_rows_metric =
      obs::Registry::Global().GetHistogram("exec.join_rows_out");

  join_ops_metric->Add(1);
  obs::TraceSpan span("exec", "join");
  span.Arg("rows_left", static_cast<uint64_t>(left.table->num_rows()))
      .Arg("rows_right", static_cast<uint64_t>(right.table->num_rows()));
  const char* algo = "cross";

  RelSet left_rels(left.sig.rels);
  RelSet right_rels(right.sig.rels);
  Schema out_schema = Schema::Concat(left.schema, right.schema);

  // Split node predicates into hash-joinable pairs and residual filters.
  struct EquiPair {
    BoundTerm left_key;     // bound against the LEFT child schema
    BoundTerm right_key;    // bound against the RIGHT child schema
    int left_term_id = -1;  // cache keys for the two sides
    int right_term_id = -1;
  };
  std::vector<EquiPair> equi;
  std::vector<BoundResidual> residual;
  for (int pred_id : node->pred_ids()) {
    const Predicate& pred = query_.predicate(pred_id);
    bool separable = false;
    if (pred.IsEquiJoin()) {
      const UdfTerm* lterm = nullptr;
      const UdfTerm* rterm = nullptr;
      if (left_rels.ContainsAll(pred.left.rels) &&
          right_rels.ContainsAll(pred.right->rels)) {
        lterm = &pred.left;
        rterm = &*pred.right;
      } else if (right_rels.ContainsAll(pred.left.rels) &&
                 left_rels.ContainsAll(pred.right->rels)) {
        lterm = &*pred.right;
        rterm = &pred.left;
      }
      if (lterm != nullptr) {
        EquiPair pair;
        MONSOON_ASSIGN_OR_RETURN(pair.left_key,
                                 BoundTerm::Bind(*lterm, left.schema, *registry_));
        MONSOON_ASSIGN_OR_RETURN(pair.right_key,
                                 BoundTerm::Bind(*rterm, right.schema, *registry_));
        pair.left_term_id = lterm->term_id;
        pair.right_term_id = rterm->term_id;
        equi.push_back(std::move(pair));
        separable = true;
      }
    }
    if (!separable) {
      MONSOON_ASSIGN_OR_RETURN(BoundResidual filter,
                               BindResidual(pred, out_schema, *registry_));
      residual.push_back(std::move(filter));
    }
  }

  // Evaluate-once key columns over both children. When every key of every
  // equi pair is cached, build/probe read flat columns and compare cached
  // hashes first — no per-row Value allocation for string keys. Any miss
  // (cache disabled / oversized column) falls back to per-row evaluation
  // for the whole join, keeping the two paths easy to ablate.
  std::vector<CachedUdfColumnPtr> left_cols(equi.size());
  std::vector<CachedUdfColumnPtr> right_cols(equi.size());
  bool keys_cached = store->udf_cache()->enabled() && !equi.empty() &&
                     StoreResident(*store, left) && StoreResident(*store, right);
  if (keys_cached) {
    UdfColumnCache* cache = store->udf_cache();
    for (size_t k = 0; k < equi.size(); ++k) {
      MONSOON_ASSIGN_OR_RETURN(
          left_cols[k],
          TolerateCacheFault(
              ctx, cache->GetOrBuild(left.sig, equi[k].left_term_id,
                                     equi[k].left_key, left.table, ctx->pool(),
                                     ctx->morsel_size(), ctx->cancel_token())));
      MONSOON_ASSIGN_OR_RETURN(
          right_cols[k],
          TolerateCacheFault(
              ctx, cache->GetOrBuild(right.sig, equi[k].right_term_id,
                                     equi[k].right_key, right.table,
                                     ctx->pool(), ctx->morsel_size(),
                                     ctx->cancel_token())));
      if (left_cols[k] == nullptr || right_cols[k] == nullptr) {
        keys_cached = false;
        break;
      }
      // Positional reads against the wrong table are the cache's one fatal
      // failure mode; the staleness check makes this structurally true.
      MONSOON_DCHECK(left_cols[k]->size() == left.table->num_rows() &&
                     right_cols[k]->size() == right.table->num_rows())
          << "cached join key column size diverged from its table";
    }
  }

  auto out = std::make_shared<Table>(out_schema);
  const Table& lt = *left.table;
  const Table& rt = *right.table;
  shard::ShardMapPtr out_map;

  if (equi.empty()) {
    // Cross product with residual filters (multi-table UDF predicates and
    // genuine cross products both land here).
    if (WorthParallel(ctx, lt.num_rows()) && rt.num_rows() > 0) {
      // Morsels over the left input; every morsel pairs its left rows with
      // the whole right side into a local table. Work (candidate pairs) is
      // tallied in a shared atomic bounded by the remaining budget, so a
      // runaway product still trips ResourceExhausted — at left-row
      // granularity instead of per pair.
      size_t morsel = ctx->morsel_size();
      size_t num_morsels = parallel::NumMorsels(lt.num_rows(), morsel);
      std::vector<Table> locals(num_morsels, Table(out_schema));
      std::atomic<uint64_t> shared_work{0};
      const uint64_t work_limit = ctx->RemainingWork();
      Status loop = parallel::ParallelFor(
          ctx->pool(), lt.num_rows(), morsel, ctx->cancel_token(),
          [&](size_t m, size_t begin, size_t end) -> Status {
            MONSOON_DCHECK(m < locals.size());
            Table& local = locals[m];
            for (size_t li = begin; li < end; ++li) {
              // Each left row expands to |rt| pairs, so a morsel can dwarf
              // the between-morsel poll interval: poll per left row.
              MONSOON_RETURN_IF_ERROR(ctx->CheckCancelled());
              MONSOON_FAULT_POINT("exec.udf_eval.cross", li);
              for (size_t ri = 0; ri < rt.num_rows(); ++ri) {
                EmitIfPasses(&local, lt, li, rt, ri, residual);
              }
              uint64_t before = shared_work.fetch_add(rt.num_rows());
              if (before + rt.num_rows() > work_limit) {
                return Status::ResourceExhausted("work budget exceeded");
              }
            }
            return Status::OK();
          });
      Status charged = ctx->ChargeWork(shared_work.load());
      MONSOON_RETURN_IF_ERROR(loop);
      MONSOON_RETURN_IF_ERROR(charged);
      for (Table& local : locals) out->TakeRowsFrom(&local);
    } else {
      for (size_t li = 0; li < lt.num_rows(); ++li) {
        MONSOON_RETURN_IF_ERROR(ctx->CheckCancelled());
        MONSOON_FAULT_POINT("exec.udf_eval.cross", li);
        for (size_t ri = 0; ri < rt.num_rows(); ++ri) {
          MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(1));
          EmitIfPasses(out.get(), lt, li, rt, ri, residual);
        }
      }
    }
  } else if (options_.join_algorithm == JoinAlgorithm::kSortMerge) {
    // Sort-merge join: materialize composite keys, sort row ids on both
    // sides, then merge runs of equal keys. Stays serial — it exists as
    // bench_micro's ablation of the (default, parallelized) hash join.
    algo = "sort-merge";
    size_t nkeys = equi.size();
    const size_t key_batch = std::max<size_t>(1, ctx->batch_size());
    // Keys live in flat typed columns (cached columns viewed in place,
    // uncached terms filled batch-wise) instead of a boxed Value per row
    // per key; sort and merge compare flat entries via FlatView, whose
    // ordering matches Value's variant ordering exactly.
    std::vector<FlatColumn> lflat, rflat;
    std::vector<FlatView> lviews(nkeys), rviews(nkeys);
    auto make_keys = [&](const Table& table, bool is_left,
                         std::vector<FlatColumn>* flat,
                         std::vector<FlatView>* views,
                         std::vector<size_t>* order) -> Status {
      const auto& cols = is_left ? left_cols : right_cols;
      if (keys_cached) {
        for (size_t k = 0; k < nkeys; ++k) (*views)[k] = FlatView::Of(*cols[k]);
      } else {
        flat->resize(nkeys);
        for (size_t k = 0; k < nkeys; ++k) {
          const auto& pair = equi[k];
          const BoundTerm& key = is_left ? pair.left_key : pair.right_key;
          (*flat)[k].Resize(key.result_type(), table.num_rows());
          (*views)[k] = FlatView::Of((*flat)[k]);
        }
      }
      for (size_t b = 0; b < table.num_rows(); b += key_batch) {
        MONSOON_RETURN_IF_ERROR(ctx->CheckCancelled());
        size_t e = std::min(table.num_rows(), b + key_batch);
        for (size_t row = b; row < e; ++row) {
          MONSOON_FAULT_POINT("exec.udf_eval.join_key", row);
        }
        if (!keys_cached) {
          for (size_t k = 0; k < nkeys; ++k) {
            const auto& pair = equi[k];
            const BoundTerm& key = is_left ? pair.left_key : pair.right_key;
            MONSOON_RETURN_IF_ERROR((*flat)[k].Fill(key, table, b, e, b));
          }
        }
      }
      order->resize(table.num_rows());
      for (size_t i = 0; i < order->size(); ++i) (*order)[i] = i;
      std::sort(order->begin(), order->end(), [&](size_t a, size_t b) {
        for (size_t k = 0; k < nkeys; ++k) {
          int c = FlatView::Compare((*views)[k], a, (*views)[k], b);
          if (c != 0) return c < 0;
        }
        return false;
      });
      return Status::OK();
    };
    std::vector<size_t> lorder, rorder;
    MONSOON_RETURN_IF_ERROR(make_keys(lt, /*is_left=*/true, &lflat, &lviews, &lorder));
    MONSOON_RETURN_IF_ERROR(make_keys(rt, /*is_left=*/false, &rflat, &rviews, &rorder));
    MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(lt.num_rows() + rt.num_rows()));

    auto key_equal = [&](size_t li, size_t ri) {
      for (size_t k = 0; k < nkeys; ++k) {
        if (!FlatView::Equal(lviews[k], li, rviews[k], ri)) return false;
      }
      return true;
    };
    // Lexicographic comparison of a left-side key against a right-side key.
    auto key_less = [&](size_t li, size_t ri) {
      for (size_t k = 0; k < nkeys; ++k) {
        int c = FlatView::Compare(lviews[k], li, rviews[k], ri);
        if (c != 0) return c < 0;
      }
      return false;
    };
    auto key_greater = [&](size_t li, size_t ri) {
      for (size_t k = 0; k < nkeys; ++k) {
        int c = FlatView::Compare(lviews[k], li, rviews[k], ri);
        if (c != 0) return c > 0;
      }
      return false;
    };
    auto same_side_equal = [&](const std::vector<FlatView>& views, size_t a,
                               size_t b) {
      for (size_t k = 0; k < nkeys; ++k) {
        if (!FlatView::Equal(views[k], a, views[k], b)) return false;
      }
      return true;
    };

    size_t li = 0, ri = 0;
    while (li < lorder.size() && ri < rorder.size()) {
      // The merge is serial and a skewed key can hold a run for a long
      // time, so the cancellation poll sits ahead of the advance/emit arms.
      MONSOON_RETURN_IF_ERROR(ctx->CheckCancelled());
      size_t lrow = lorder[li];
      size_t rrow = rorder[ri];
      if (key_less(lrow, rrow)) {
        ++li;
        continue;
      }
      if (key_greater(lrow, rrow)) {
        ++ri;
        continue;
      }
      if (!key_equal(lrow, rrow)) {
        // NaN keys compare unordered-equal; skip safely.
        ++li;
        continue;
      }
      // Extents of the equal run on both sides.
      size_t lend = li + 1;
      while (lend < lorder.size() && same_side_equal(lviews, lorder[lend], lrow)) {
        ++lend;
      }
      size_t rend = ri + 1;
      while (rend < rorder.size() && same_side_equal(rviews, rorder[rend], rrow)) {
        ++rend;
      }
      for (size_t a = li; a < lend; ++a) {
        for (size_t b = ri; b < rend; ++b) {
          MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(1));
          EmitIfPasses(out.get(), lt, lorder[a], rt, rorder[b], residual);
        }
      }
      li = lend;
      ri = rend;
    }
  } else if (ctx->num_shards() > 1) {
    // Sharded hash join: build and probe both run per-shard under the
    // shard supervisor (kill → discard that shard's partials → bounded
    // retry of only that shard). Key columns stay whole-side — the
    // probe's confirm step random-accesses arbitrary build rows — so a
    // recovered shard recomputes only its key hashes (absolute disjoint
    // slots, idempotent across attempts) and its probes (commit-on-success
    // locals). The scatter/index/Bloom merge between the two passes is the
    // same serial-row-order code as the parallel join, so the index is a
    // function of build contents only.
    algo = "hash-sharded";
    obs::TraceSpan build_span("exec", "join.build");
    bool build_left = lt.num_rows() <= rt.num_rows();
    const Table& build = build_left ? lt : rt;
    const Table& probe = build_left ? rt : lt;
    size_t nkeys = equi.size();

    std::vector<const BoundTerm*> build_terms;
    std::vector<const BoundTerm*> probe_terms;
    build_terms.reserve(nkeys);
    probe_terms.reserve(nkeys);
    for (const auto& pair : equi) {
      build_terms.push_back(build_left ? &pair.left_key : &pair.right_key);
      probe_terms.push_back(build_left ? &pair.right_key : &pair.left_key);
    }
    const auto& build_cols = build_left ? left_cols : right_cols;
    const auto& probe_cols = build_left ? right_cols : left_cols;

    std::vector<FlatColumn> build_flat;
    std::vector<FlatView> build_views(nkeys);
    if (keys_cached) {
      for (size_t k = 0; k < nkeys; ++k) {
        build_views[k] = FlatView::Of(*build_cols[k]);
      }
    } else {
      build_flat.resize(nkeys);
      for (size_t k = 0; k < nkeys; ++k) {
        build_flat[k].Resize(build_terms[k]->result_type(), build.num_rows());
        build_views[k] = FlatView::Of(build_flat[k]);
      }
    }
    std::vector<uint64_t> build_hashes(build.num_rows());
    HashBuildOperator build_op(&build_terms, keys_cached, &build_flat,
                               &build_views, &build_hashes);
    shard::ShardMapPtr build_map =
        ResolveShardMap(build_left ? left.shards : right.shards,
                        build.num_rows(), ctx->num_shards());
    {
      shard::ShardRunStats stats;
      Status run = shard::RunSharded(
          ctx->pool(), ctx->cancel_token(), *build_map, shard::kShardExecPoint,
          [&](size_t s, size_t begin, size_t end, uint32_t attempt) -> Status {
            Pipeline pipeline;
            pipeline.Add(&build_op);
            const size_t mid = begin + (end - begin) / 2;
            MONSOON_RETURN_IF_ERROR(pipeline.Run(build, begin, mid, ctx));
            MONSOON_RETURN_IF_ERROR(
                fault::FireAttempt(shard::kShardExecPoint, s, attempt));
            return pipeline.Run(build, mid, end, ctx);
          },
          &stats);
      ctx->AddShardStats(stats);
      MONSOON_RETURN_IF_ERROR(run);
    }

    std::vector<std::vector<size_t>> partition_rows(kBuildPartitions);
    for (auto& rows : partition_rows) {
      rows.reserve(build.num_rows() / kBuildPartitions + 1);
    }
    // A shift and a pointer append per row, bracketed by polling shard /
    // ParallelFor passes (see the parallel join's scatter).
    for (size_t row = 0; row < build.num_rows(); ++row) {  // NOLINT(monsoon-analyze-must-poll)
      size_t p = build_hashes[row] >> kBuildPartitionShift;
      MONSOON_DCHECK(p < kBuildPartitions);
      partition_rows[p].push_back(row);
    }
    std::vector<std::unordered_multimap<uint64_t, size_t>> partitions(
        kBuildPartitions);
    MONSOON_RETURN_IF_ERROR(parallel::ParallelFor(
        ctx->pool(), kBuildPartitions, 1, ctx->cancel_token(),
        [&](size_t p, size_t, size_t) {
          partitions[p].reserve(partition_rows[p].size() * 2);
          for (size_t row : partition_rows[p]) {
            partitions[p].emplace(build_hashes[row], row);
          }
          return Status::OK();
        }));
    std::unique_ptr<JoinBloomFilter> bloom;
    if (ctx->batch_size() > 1) {
      bloom = std::make_unique<JoinBloomFilter>(build.num_rows());
      for (uint64_t h : build_hashes) bloom->AddHash(h);
    }
    MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(build.num_rows()));
    build_span.Arg("rows", static_cast<uint64_t>(build.num_rows()));
    build_span.End();

    // Probe: one supervised body per probe-side shard, emitting into a
    // local table with a local work tally, both committed only on success
    // — a killed attempt's rows and tally die with it, so the shared
    // tally counts every shard exactly once and the merged output equals
    // the unsharded row multiset at any thread count.
    obs::TraceSpan probe_span("exec", "join.probe");
    probe_span.Arg("rows", static_cast<uint64_t>(probe.num_rows()));
    shard::ShardMapPtr probe_map =
        ResolveShardMap(build_left ? right.shards : left.shards,
                        probe.num_rows(), ctx->num_shards());
    std::vector<Table> locals(probe_map->num_shards(), Table(out_schema));
    std::atomic<uint64_t> shared_work{0};
    const uint64_t work_limit = ctx->RemainingWork();
    std::vector<FlatView> probe_views(keys_cached ? nkeys : 0);
    for (size_t k = 0; k < probe_views.size(); ++k) {
      probe_views[k] = FlatView::Of(*probe_cols[k]);
    }
    HashProbeOperator::Spec spec;
    spec.lt = &lt;
    spec.rt = &rt;
    spec.build_left = build_left;
    spec.keys_cached = keys_cached;
    spec.probe_terms = &probe_terms;
    spec.build_views = &build_views;
    spec.probe_views = &probe_views;
    spec.partitions = &partitions;
    spec.bloom = bloom.get();
    spec.residual = &residual;
    spec.out_schema = &out_schema;
    {
      shard::ShardRunStats stats;
      Status run = shard::RunSharded(
          ctx->pool(), ctx->cancel_token(), *probe_map, shard::kShardExecPoint,
          [&](size_t s, size_t begin, size_t end, uint32_t attempt) -> Status {
            uint64_t local_work = 0;
            Table attempt_local(out_schema);
            HashProbeOperator probe_op(spec, &attempt_local, &local_work);
            Pipeline pipeline;
            pipeline.Add(&probe_op);
            const size_t mid = begin + (end - begin) / 2;
            MONSOON_RETURN_IF_ERROR(pipeline.Run(probe, begin, mid, ctx));
            MONSOON_RETURN_IF_ERROR(
                fault::FireAttempt(shard::kShardExecPoint, s, attempt));
            MONSOON_RETURN_IF_ERROR(pipeline.Run(probe, mid, end, ctx));
            uint64_t before = shared_work.fetch_add(local_work);
            if (before + local_work > work_limit) {
              return Status::ResourceExhausted("work budget exceeded");
            }
            locals[s] = std::move(attempt_local);
            return Status::OK();
          },
          &stats);
      ctx->AddShardStats(stats);
      Status charged = ctx->ChargeWork(shared_work.load());
      MONSOON_RETURN_IF_ERROR(run);
      MONSOON_RETURN_IF_ERROR(charged);
    }
    out_map = MapFromShardOutputs(locals);
    for (Table& local : locals) out->TakeRowsFrom(&local);
  } else if (WorthParallel(ctx, std::max(lt.num_rows(), rt.num_rows()))) {
    // Parallel hash join: partitioned build + morsel-driven probe.
    algo = "hash-parallel";
    obs::TraceSpan build_span("exec", "join.build");
    bool build_left = lt.num_rows() <= rt.num_rows();
    const Table& build = build_left ? lt : rt;
    const Table& probe = build_left ? rt : lt;
    size_t nkeys = equi.size();
    size_t morsel = ctx->morsel_size();
    parallel::ThreadPool* pool = ctx->pool();

    // Per-side key vectors, hoisted and reserve()d once instead of
    // re-selecting build_left per row per key (fallback path), and the
    // cached columns oriented the same way.
    std::vector<const BoundTerm*> build_terms;
    std::vector<const BoundTerm*> probe_terms;
    build_terms.reserve(nkeys);
    probe_terms.reserve(nkeys);
    for (const auto& pair : equi) {
      build_terms.push_back(build_left ? &pair.left_key : &pair.right_key);
      probe_terms.push_back(build_left ? &pair.right_key : &pair.left_key);
    }
    const auto& build_cols = build_left ? left_cols : right_cols;
    const auto& probe_cols = build_left ? right_cols : left_cols;

    // Build phase 1 (parallel): composite key hashes, from cached hash
    // columns when available (strings never re-hashed); the fallback fills
    // whole-side FlatColumns the probe's confirm step compares against —
    // no boxed key Values on either path. Morsels drive the shared
    // HashBuildOperator over disjoint row ranges.
    std::vector<FlatColumn> build_flat;
    std::vector<FlatView> build_views(nkeys);
    if (keys_cached) {
      for (size_t k = 0; k < nkeys; ++k) {
        build_views[k] = FlatView::Of(*build_cols[k]);
      }
    } else {
      build_flat.resize(nkeys);
      for (size_t k = 0; k < nkeys; ++k) {
        build_flat[k].Resize(build_terms[k]->result_type(), build.num_rows());
        build_views[k] = FlatView::Of(build_flat[k]);
      }
    }
    std::vector<uint64_t> build_hashes(build.num_rows());
    HashBuildOperator build_op(&build_terms, keys_cached, &build_flat,
                               &build_views, &build_hashes);
    MONSOON_RETURN_IF_ERROR(parallel::ParallelFor(
        pool, build.num_rows(), morsel, ctx->cancel_token(),
        [&](size_t, size_t begin, size_t end) {
          return Pipeline().Add(&build_op).Run(build, begin, end, ctx);
        }));

    // Build phase 2: scatter rows to partitions in row order (serial, a
    // pointer append per row), then build each partition's table in
    // parallel. Per-partition row order equals global build order, so the
    // partition tables are independent of the thread count.
    std::vector<std::vector<size_t>> partition_rows(kBuildPartitions);
    for (auto& rows : partition_rows) {
      rows.reserve(build.num_rows() / kBuildPartitions + 1);
    }
    // A shift and a pointer append per row, with polling ParallelFor calls
    // immediately before and after: a poll inside would cost more than the
    // loop body.
    for (size_t row = 0; row < build.num_rows(); ++row) {  // NOLINT(monsoon-analyze-must-poll)
      size_t p = build_hashes[row] >> kBuildPartitionShift;
      MONSOON_DCHECK(p < kBuildPartitions);
      partition_rows[p].push_back(row);
    }
    std::vector<std::unordered_multimap<uint64_t, size_t>> partitions(
        kBuildPartitions);
    MONSOON_RETURN_IF_ERROR(parallel::ParallelFor(
        pool, kBuildPartitions, 1, ctx->cancel_token(),
        [&](size_t p, size_t, size_t) {
          partitions[p].reserve(partition_rows[p].size() * 2);
          for (size_t row : partition_rows[p]) {
            partitions[p].emplace(build_hashes[row], row);
          }
          return Status::OK();
        }));
    // Build-side Bloom filter (vectorized mode only): pre-screens probe
    // hashes so misses never touch a partition's hash table. It stores
    // exactly the hashes in the index, so a reject implies an empty
    // equal_range — the cost model cannot observe the difference.
    std::unique_ptr<JoinBloomFilter> bloom;
    if (ctx->batch_size() > 1) {
      bloom = std::make_unique<JoinBloomFilter>(build.num_rows());
      for (uint64_t h : build_hashes) bloom->AddHash(h);
    }
    MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(build.num_rows()));
    build_span.Arg("rows", static_cast<uint64_t>(build.num_rows()));
    build_span.End();

    // Probe phase (parallel): morsels emit into local tables merged in
    // morsel order; probe work (rows + hash candidates) accumulates in a
    // shared atomic tally charged once at the barrier, bounded by the
    // remaining budget so oversized joins still trip the timeout.
    obs::TraceSpan probe_span("exec", "join.probe");
    probe_span.Arg("rows", static_cast<uint64_t>(probe.num_rows()));
    size_t num_morsels = parallel::NumMorsels(probe.num_rows(), morsel);
    std::vector<Table> locals(num_morsels, Table(out_schema));
    std::atomic<uint64_t> shared_work{0};
    const uint64_t work_limit = ctx->RemainingWork();
    std::vector<FlatView> probe_views(keys_cached ? nkeys : 0);
    for (size_t k = 0; k < probe_views.size(); ++k) {
      probe_views[k] = FlatView::Of(*probe_cols[k]);
    }
    HashProbeOperator::Spec spec;
    spec.lt = &lt;
    spec.rt = &rt;
    spec.build_left = build_left;
    spec.keys_cached = keys_cached;
    spec.probe_terms = &probe_terms;
    spec.build_views = &build_views;
    spec.probe_views = &probe_views;
    spec.partitions = &partitions;
    spec.bloom = bloom.get();
    spec.residual = &residual;
    spec.out_schema = &out_schema;
    Status loop = parallel::ParallelFor(
        pool, probe.num_rows(), morsel, ctx->cancel_token(),
        [&](size_t m, size_t begin, size_t end) -> Status {
          MONSOON_DCHECK(m < locals.size());
          uint64_t local_work = 0;
          HashProbeOperator probe_op(spec, &locals[m], &local_work);
          MONSOON_RETURN_IF_ERROR(
              Pipeline().Add(&probe_op).Run(probe, begin, end, ctx));
          uint64_t before = shared_work.fetch_add(local_work);
          if (before + local_work > work_limit) {
            return Status::ResourceExhausted("work budget exceeded");
          }
          return Status::OK();
        });
    Status charged = ctx->ChargeWork(shared_work.load());
    MONSOON_RETURN_IF_ERROR(loop);
    MONSOON_RETURN_IF_ERROR(charged);
    for (Table& local : locals) out->TakeRowsFrom(&local);
  } else {
    // Serial hash join: build on the smaller input.
    algo = "hash-serial";
    obs::TraceSpan build_span("exec", "join.build");
    bool build_left = lt.num_rows() <= rt.num_rows();
    const Table& build = build_left ? lt : rt;
    const Table& probe = build_left ? rt : lt;

    size_t nkeys = equi.size();
    // Hoisted per-side key vectors and reserve()d scratch buffers shared
    // by the cached and fallback paths (see the parallel join above).
    std::vector<const BoundTerm*> build_terms;
    std::vector<const BoundTerm*> probe_terms;
    build_terms.reserve(nkeys);
    probe_terms.reserve(nkeys);
    for (const auto& pair : equi) {
      build_terms.push_back(build_left ? &pair.left_key : &pair.right_key);
      probe_terms.push_back(build_left ? &pair.right_key : &pair.left_key);
    }
    const auto& build_cols = build_left ? left_cols : right_cols;
    const auto& probe_cols = build_left ? right_cols : left_cols;

    // Build through the same operator as the parallel join, plus a serial
    // index-insert sink that emplaces rows in order; uncached keys land in
    // whole-side FlatColumns the probe compares against (no boxed Values).
    std::vector<FlatColumn> build_flat;
    std::vector<FlatView> build_views(nkeys);
    if (keys_cached) {
      for (size_t k = 0; k < nkeys; ++k) {
        build_views[k] = FlatView::Of(*build_cols[k]);
      }
    } else {
      build_flat.resize(nkeys);
      for (size_t k = 0; k < nkeys; ++k) {
        build_flat[k].Resize(build_terms[k]->result_type(), build.num_rows());
        build_views[k] = FlatView::Of(build_flat[k]);
      }
    }
    std::vector<uint64_t> build_hashes(build.num_rows());
    std::unordered_multimap<uint64_t, size_t> index;
    index.reserve(build.num_rows() * 2);
    HashBuildOperator build_op(&build_terms, keys_cached, &build_flat,
                               &build_views, &build_hashes);
    IndexInsertOperator insert_op(&build_hashes, &index);
    MONSOON_RETURN_IF_ERROR(Pipeline().Add(&build_op).Add(&insert_op).Run(
        build, 0, build.num_rows(), ctx));
    std::unique_ptr<JoinBloomFilter> bloom;
    if (ctx->batch_size() > 1) {
      bloom = std::make_unique<JoinBloomFilter>(build.num_rows());
      for (uint64_t h : build_hashes) bloom->AddHash(h);
    }
    MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(build.num_rows()));
    build_span.Arg("rows", static_cast<uint64_t>(build.num_rows()));
    build_span.End();

    obs::TraceSpan probe_span("exec", "join.probe");
    probe_span.Arg("rows", static_cast<uint64_t>(probe.num_rows()));
    std::vector<FlatView> probe_views(keys_cached ? nkeys : 0);
    for (size_t k = 0; k < probe_views.size(); ++k) {
      probe_views[k] = FlatView::Of(*probe_cols[k]);
    }
    HashProbeOperator::Spec spec;
    spec.lt = &lt;
    spec.rt = &rt;
    spec.build_left = build_left;
    spec.keys_cached = keys_cached;
    spec.probe_terms = &probe_terms;
    spec.build_views = &build_views;
    spec.probe_views = &probe_views;
    spec.index = &index;
    spec.bloom = bloom.get();
    spec.residual = &residual;
    spec.out_schema = &out_schema;
    HashProbeOperator probe_op(spec, out.get(), /*work_tally=*/nullptr);
    MONSOON_RETURN_IF_ERROR(
        Pipeline().Add(&probe_op).Run(probe, 0, probe.num_rows(), ctx));
  }

  // The join's output objects are the paper's cost for this node.
  MONSOON_RETURN_IF_ERROR(ctx->Charge(out->num_rows()));
  join_rows_metric->Observe(out->num_rows());
  span.Arg("algo", algo)
      .Arg("keys_cached", keys_cached)
      .Arg("rows_out", static_cast<uint64_t>(out->num_rows()));

  MaterializedExpr result;
  result.sig = node->output_sig();
  result.schema = std::move(out_schema);
  result.table = std::move(out);
  result.shards = std::move(out_map);
  return result;
}

Status Executor::CollectStats(const MaterializedExpr& expr,
                              MaterializedStore* store, ExecContext* ctx,
                              std::vector<DistinctObservation>* obs) const {
  // Fully qualified: the `obs` out-parameter shadows the obs:: namespace.
  static ::monsoon::obs::Counter* const sigma_ops_metric =
      ::monsoon::obs::Registry::Global().GetCounter("exec.sigma_ops");

  sigma_ops_metric->Add(1);
  ::monsoon::obs::TraceSpan span("exec", "sigma");
  span.Arg("rows", static_cast<uint64_t>(expr.table->num_rows()));
  WallTimer timer;
  RelSet expr_rels(expr.sig.rels);

  // One HLL pass per UDF term evaluable over this expression (the paper's
  // Σ computes "the number of distinct values returned by r for all UDFs
  // that are referenced in the query").
  std::vector<std::pair<int, BoundTerm>> terms;
  std::vector<int> seen;
  for (const UdfTerm* term : query_.AllTerms()) {
    if (!expr_rels.ContainsAll(term->rels)) continue;
    if (std::find(seen.begin(), seen.end(), term->term_id) != seen.end()) continue;
    seen.push_back(term->term_id);
    MONSOON_ASSIGN_OR_RETURN(BoundTerm bound,
                             BoundTerm::Bind(*term, expr.schema, *registry_));
    terms.emplace_back(term->term_id, std::move(bound));
  }
  span.Arg("terms", static_cast<uint64_t>(terms.size()));
  if (terms.empty()) return Status::OK();

  // Whole-pass fault point (coordinate = input cardinality, identical in
  // serial and parallel execution): lets fault specs kill Σ passes
  // outright to exercise the prior-only degradation path.
  MONSOON_FAULT_POINT("exec.sigma.pass", expr.table->num_rows());

  // Evaluate-once columns per term: repeated Σ passes over the same
  // materialized expression (the plan → Σ → re-plan loop) hit the cache
  // and feed precomputed hashes straight into the sketches. Terms whose
  // column is unavailable fall back per-row, independently of the rest.
  // Sharded passes build shard-scoped columns inside each supervised body
  // instead, so a killed shard's partial fills die with the attempt.
  const bool sharded = ctx->num_shards() > 1;
  std::vector<CachedUdfColumnPtr> term_cols(terms.size());
  if (!sharded && store != nullptr && store->udf_cache()->enabled() &&
      StoreResident(*store, expr)) {
    for (size_t t = 0; t < terms.size(); ++t) {
      MONSOON_ASSIGN_OR_RETURN(
          term_cols[t],
          TolerateCacheFault(
              ctx, store->udf_cache()->GetOrBuild(
                       expr.sig, terms[t].first, terms[t].second, expr.table,
                       ctx->pool(), ctx->morsel_size(), ctx->cancel_token())));
    }
  }
  for (size_t t = 0; t < terms.size(); ++t) {
    MONSOON_DCHECK(term_cols[t] == nullptr ||
                   term_cols[t]->size() == expr.table->num_rows())
        << "cached column for term " << terms[t].first << " is stale";
  }
  std::vector<HyperLogLog> sketches(terms.size(),
                                    HyperLogLog(options_.hll_precision));
  const Table& table = *expr.table;
  if (sharded) {
    // Sharded Σ: each shard folds its rows into a fresh sketch set per
    // attempt (with shard-scoped evaluate-once columns) and commits the
    // set only on success. The register-wise max merge in shard order is
    // exact and order-independent, so the distinct counts are
    // bit-identical to the serial pass — including across a recovered
    // shard kill. A shard failed past the retry budget propagates its
    // (shard-naming) transient status, which the caller degrades to
    // prior-only planning for this relation.
    shard::ShardMapPtr map =
        ResolveShardMap(expr.shards, table.num_rows(), ctx->num_shards());
    std::vector<std::vector<HyperLogLog>> shard_sketches(
        map->num_shards(),
        std::vector<HyperLogLog>(terms.size(),
                                 HyperLogLog(options_.hll_precision)));
    const bool cache_on = store != nullptr && store->udf_cache()->enabled() &&
                          StoreResident(*store, expr);
    shard::ShardRunStats stats;
    Status run = shard::RunSharded(
        ctx->pool(), ctx->cancel_token(), *map, shard::kShardExecPoint,
        [&](size_t s, size_t begin, size_t end, uint32_t attempt) -> Status {
          std::vector<CachedUdfColumnPtr> local_cols(terms.size());
          if (cache_on) {
            for (size_t t = 0; t < terms.size(); ++t) {
              MONSOON_ASSIGN_OR_RETURN(
                  local_cols[t],
                  TolerateCacheFault(
                      ctx, store->udf_cache()->GetOrBuildShard(
                               expr.sig, terms[t].first, terms[t].second,
                               expr.table, begin, end, ctx->cancel_token())));
            }
          }
          std::vector<HyperLogLog> local(terms.size(),
                                         HyperLogLog(options_.hll_precision));
          SigmaOperator sigma_op(&terms, &local_cols, &local,
                                 /*col_base=*/begin);
          Pipeline pipeline;
          pipeline.Add(&sigma_op);
          const size_t mid = begin + (end - begin) / 2;
          MONSOON_RETURN_IF_ERROR(pipeline.Run(table, begin, mid, ctx));
          MONSOON_RETURN_IF_ERROR(
              fault::FireAttempt(shard::kShardExecPoint, s, attempt));
          MONSOON_RETURN_IF_ERROR(pipeline.Run(table, mid, end, ctx));
          shard_sketches[s] = std::move(local);
          return Status::OK();
        },
        &stats);
    ctx->AddShardStats(stats);
    MONSOON_RETURN_IF_ERROR(run);
    // Merge iterates sketch sets, not rows (register-wise max).
    for (const std::vector<HyperLogLog>& local : shard_sketches) {  // NOLINT(monsoon-analyze-must-poll)
      MONSOON_DCHECK(local.size() == sketches.size());
      for (size_t t = 0; t < terms.size(); ++t) {
        MONSOON_RETURN_IF_ERROR(sketches[t].Merge(local[t]));
      }
    }
  } else if (WorthParallel(ctx, table.num_rows())) {
    // One sketch set per morsel, merged at the barrier. The HLL merge is
    // register-wise max — exact, order- and grouping-independent — so the
    // observed distinct counts are bit-identical to the serial pass. Σ
    // morsels are widened to a handful per thread: sketch sets cost 2^p
    // bytes per term each, so many small morsels would waste memory for
    // no extra balance.
    parallel::ThreadPool* pool = ctx->pool();
    size_t morsel =
        std::max(ctx->morsel_size(),
                 table.num_rows() / (4 * static_cast<size_t>(pool->num_threads())) + 1);
    size_t num_morsels = parallel::NumMorsels(table.num_rows(), morsel);
    std::vector<std::vector<HyperLogLog>> morsel_sketches(
        num_morsels,
        std::vector<HyperLogLog>(terms.size(), HyperLogLog(options_.hll_precision)));
    MONSOON_RETURN_IF_ERROR(parallel::ParallelFor(
        pool, table.num_rows(), morsel, ctx->cancel_token(),
        [&](size_t m, size_t begin, size_t end) -> Status {
          MONSOON_DCHECK(m < morsel_sketches.size());
          SigmaOperator sigma_op(&terms, &term_cols, &morsel_sketches[m]);
          return Pipeline().Add(&sigma_op).Run(table, begin, end, ctx);
        }));
    // Iterates sketch sets (a handful per thread), not rows; the merge is
    // register-wise max over fixed-size arrays.
    for (const std::vector<HyperLogLog>& local : morsel_sketches) {  // NOLINT(monsoon-analyze-must-poll)
      // Register-wise max requires equal precision on every per-morsel
      // sketch; all are built from options_.hll_precision above.
      MONSOON_DCHECK(local.size() == sketches.size());
      for (size_t t = 0; t < terms.size(); ++t) {
        MONSOON_RETURN_IF_ERROR(sketches[t].Merge(local[t]));
      }
    }
  } else {
    SigmaOperator sigma_op(&terms, &term_cols, &sketches);
    MONSOON_RETURN_IF_ERROR(
        Pipeline().Add(&sigma_op).Run(table, 0, table.num_rows(), ctx));
  }
  // Statistics collection is another pass over the data (Sec. 4.4). The
  // charge stays at the END of the pass on purpose: a Σ pass lost to a
  // fault charges exactly nothing at every thread count, which keeps
  // degraded-run accounting deterministic.
  MONSOON_RETURN_IF_ERROR(ctx->Charge(table.num_rows()));

  for (size_t t = 0; t < terms.size(); ++t) {
    DistinctObservation observation;
    observation.term_id = terms[t].first;
    observation.expr = expr.sig;
    observation.distinct_count = std::max(0.0, std::round(sketches[t].Estimate()));
    obs->push_back(observation);
  }
  ctx->AddStatsCollectSeconds(timer.Seconds());
  return Status::OK();
}

}  // namespace monsoon
