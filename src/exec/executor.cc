#include "exec/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"
#include "fault/injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "sketch/hyperloglog.h"

namespace monsoon {

StatusOr<BoundTerm> BoundTerm::Bind(const UdfTerm& term, const Schema& schema,
                                    const UdfRegistry& registry) {
  BoundTerm bound;
  MONSOON_ASSIGN_OR_RETURN(bound.fn_, registry.Lookup(term.function));
  bound.arg_cols_.reserve(term.args.size());
  for (const auto& arg : term.args) {
    MONSOON_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(arg));
    bound.arg_cols_.push_back(col);
  }
  return bound;
}

namespace {

/// A predicate bound against a single (possibly concatenated) schema,
/// evaluated as a residual filter. Leaf scans attach evaluate-once cached
/// columns (the filter then never calls the UDF per row); join residuals
/// evaluate against transient concatenated rows and stay uncached.
struct BoundResidual {
  enum class Kind { kJoinEq, kJoinNeq, kSelectionEq };
  Kind kind;
  BoundTerm left;
  BoundTerm right;  // join kinds only
  Value constant;   // selection only
  CachedUdfColumnPtr left_col;   // indexes the leaf's source table
  CachedUdfColumnPtr right_col;  // join kinds only

  bool Eval(const Table& table, size_t row) const {
    if (left_col != nullptr) {
      switch (kind) {
        case Kind::kJoinEq:
          return CachedUdfColumn::Equal(*left_col, row, *right_col, row);
        case Kind::kJoinNeq:
          return !CachedUdfColumn::Equal(*left_col, row, *right_col, row);
        case Kind::kSelectionEq:
          return left_col->EqualsValue(row, constant);
      }
      return false;
    }
    Value l = left.Eval(table, row);
    switch (kind) {
      case Kind::kJoinEq:
        return l == right.Eval(table, row);
      case Kind::kJoinNeq:
        return l != right.Eval(table, row);
      case Kind::kSelectionEq:
        return l == constant;
    }
    return false;
  }
};

StatusOr<BoundResidual> BindResidual(const Predicate& pred, const Schema& schema,
                                     const UdfRegistry& registry) {
  BoundResidual residual;
  MONSOON_ASSIGN_OR_RETURN(residual.left, BoundTerm::Bind(pred.left, schema, registry));
  if (pred.kind == Predicate::Kind::kSelection) {
    residual.kind = BoundResidual::Kind::kSelectionEq;
    residual.constant = pred.constant;
  } else {
    residual.kind = pred.equality ? BoundResidual::Kind::kJoinEq
                                  : BoundResidual::Kind::kJoinNeq;
    MONSOON_ASSIGN_OR_RETURN(residual.right,
                             BoundTerm::Bind(*pred.right, schema, registry));
  }
  return residual;
}

/// Appends the concatenation of lt[li] and rt[ri] to `out` unless a
/// residual filter rejects it (the candidate is appended first so filters
/// can evaluate against the concatenated schema, then retracted).
void EmitIfPasses(Table* out, const Table& lt, size_t li, const Table& rt,
                  size_t ri, const std::vector<BoundResidual>& residual) {
  MONSOON_DCHECK(li < lt.num_rows() && ri < rt.num_rows())
      << "join candidate (" << li << ", " << ri << ") out of bounds";
  out->AppendConcatRow(lt, li, rt, ri);
  size_t row = out->num_rows() - 1;
  for (const auto& filter : residual) {
    if (!filter.Eval(*out, row)) {
      out->PopRow();
      return;
    }
  }
}

/// Morsel-driven operators run when a pool is attached and the input is
/// big enough that splitting pays for the merge.
bool WorthParallel(const ExecContext* ctx, size_t rows) {
  return ctx->pool() != nullptr && rows > ctx->morsel_size();
}

/// A cached UDF column only pays off when the expression can be scanned
/// again — i.e. its exact physical table is registered in the store (base
/// relations and previously materialized expressions that later plan
/// trees reference as leaves). A fresh intermediate (a filtered leaf or a
/// join output consumed inline) exists only for the current operator, so
/// building a column over it would be a pure extra pass that can never
/// hit; those read paths fall back to per-row evaluation.
bool StoreResident(const MaterializedStore& store, const MaterializedExpr& expr) {
  auto stored = store.Lookup(expr.sig);
  return stored.ok() && (*stored)->table.get() == expr.table.get();
}

/// A transient fault while building an evaluate-once column is not fatal
/// to the query: the caller falls back to per-row evaluation, which is
/// accounting-identical (the cache is invisible to the cost model). Hard
/// errors (type mismatches, budget) still propagate, as does any error
/// once the query's cancellation token has tripped — a deadline must
/// abort, not degrade.
StatusOr<CachedUdfColumnPtr> TolerateCacheFault(
    ExecContext* ctx, StatusOr<CachedUdfColumnPtr> col) {
  static obs::Counter* const dropped_metric =
      obs::Registry::Global().GetCounter("faults.cache_fills_dropped");
  if (col.ok()) return col;
  bool query_dead =
      ctx->cancel_token() != nullptr && ctx->cancel_token()->cancelled();
  if (query_dead || !col.status().IsTransient()) return col;
  dropped_metric->Add(1);
  return CachedUdfColumnPtr();
}

constexpr uint64_t kJoinHashSeed = 0xabcdef0123456789ULL;
/// Partition count for the parallel hash join's partitioned build. Fixed
/// (not thread-derived) so the output is bit-identical across thread
/// counts; selected from the hash's top bits, which the per-partition
/// unordered_multimap (bottom-bit based) does not reuse.
constexpr size_t kBuildPartitions = 64;
constexpr int kBuildPartitionShift = 58;  // 64 - log2(kBuildPartitions)

}  // namespace

Executor::Executor(const QuerySpec& query, const UdfRegistry* registry,
                   Options options)
    : query_(query), registry_(registry), options_(options) {}

StatusOr<ExecResult> Executor::Execute(const PlanNode::Ptr& plan,
                                       MaterializedStore* store,
                                       ExecContext* ctx) const {
  static obs::Counter* const cache_hits_metric =
      obs::Registry::Global().GetCounter("exec.udf_cache_hits");
  static obs::Counter* const cache_misses_metric =
      obs::Registry::Global().GetCounter("exec.udf_cache_misses");

  obs::TraceSpan span("exec", "execute");
  const UdfCacheStats before = store->udf_cache()->stats();
  ExecResult result;
  StatusOr<MaterializedExpr> output = ExecuteNode(plan, store, ctx, &result);
  // Cache counter deltas survive even failed runs (timeouts report the
  // partial cache activity alongside the partial work accounting).
  const UdfCacheStats after = store->udf_cache()->stats();
  ctx->AddUdfCacheDelta(after.hits - before.hits, after.misses - before.misses,
                        after.evictions - before.evictions, after.bytes_in_use);
  cache_hits_metric->Add(after.hits - before.hits);
  cache_misses_metric->Add(after.misses - before.misses);
  if (span.enabled()) {
    uint64_t hits = after.hits - before.hits;
    uint64_t lookups = hits + (after.misses - before.misses);
    span.Arg("udf_cache_hits", hits)
        .Arg("udf_cache_hit_ratio",
             lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups))
        .Arg("ok", output.ok());
  }
  MONSOON_RETURN_IF_ERROR(output.status());
  result.output = std::move(output).value();
  store->Put(result.output);
  return result;
}

StatusOr<MaterializedExpr> Executor::ExecuteNode(const PlanNode::Ptr& node,
                                                 MaterializedStore* store,
                                                 ExecContext* ctx,
                                                 ExecResult* result) const {
  switch (node->kind()) {
    case PlanNode::Kind::kLeaf: {
      MONSOON_ASSIGN_OR_RETURN(MaterializedExpr out, ExecuteLeaf(node, store, ctx));
      result->observed_counts.emplace_back(out.sig, out.table->num_rows());
      return out;
    }
    case PlanNode::Kind::kJoin: {
      MONSOON_ASSIGN_OR_RETURN(MaterializedExpr left,
                               ExecuteNode(node->left(), store, ctx, result));
      MONSOON_ASSIGN_OR_RETURN(MaterializedExpr right,
                               ExecuteNode(node->right(), store, ctx, result));
      MONSOON_ASSIGN_OR_RETURN(
          MaterializedExpr out,
          ExecuteJoin(node, std::move(left), std::move(right), store, ctx));
      result->observed_counts.emplace_back(out.sig, out.table->num_rows());
      return out;
    }
    case PlanNode::Kind::kStatsCollect: {
      static obs::Counter* const degraded_metric =
          obs::Registry::Global().GetCounter("faults.degraded_sigma");
      MONSOON_ASSIGN_OR_RETURN(MaterializedExpr child,
                               ExecuteNode(node->child(), store, ctx, result));
      Status sigma =
          CollectStats(child, store, ctx, &result->observed_distincts);
      if (!sigma.ok()) {
        // Graceful degradation: a Σ pass lost to a transient fault or a
        // per-UDF timeout is skipped, not fatal — the MDP simply plans
        // that d(F, r|_s) from the spike-and-slab prior. Budget trips,
        // hard errors, and anything after the query deadline/cancel
        // tripped still abort (CollectStats charges at its end, so a
        // failed pass deterministically charges nothing).
        bool query_dead = ctx->cancel_token() != nullptr &&
                          ctx->cancel_token()->cancelled();
        if (query_dead || !sigma.IsTransient()) return sigma;
        degraded_metric->Add(1);
        result->degraded.push_back(
            std::move(sigma).WithContext("collecting Σ statistics")
                .ToString());
      }
      return child;
    }
  }
  return Status::Internal("unknown plan node kind");
}

StatusOr<MaterializedExpr> Executor::ExecuteLeaf(const PlanNode::Ptr& node,
                                                 MaterializedStore* store,
                                                 ExecContext* ctx) const {
  static obs::Counter* const scan_ops_metric =
      obs::Registry::Global().GetCounter("exec.scan_ops");
  static obs::Histogram* const scan_rows_metric =
      obs::Registry::Global().GetHistogram("exec.scan_rows_in");

  MONSOON_ASSIGN_OR_RETURN(const MaterializedExpr* source,
                           store->Lookup(node->source()));
  scan_ops_metric->Add(1);
  scan_rows_metric->Observe(source->table->num_rows());
  obs::TraceSpan span("exec", "scan");
  span.Arg("rows_in", static_cast<uint64_t>(source->table->num_rows()))
      .Arg("preds", static_cast<uint64_t>(node->pred_ids().size()));
  // Reading the materialized input costs c(source) objects (Sec. 4.4).
  MONSOON_RETURN_IF_ERROR(ctx->Charge(source->table->num_rows()));
  if (node->pred_ids().empty()) {
    span.Arg("rows_out", static_cast<uint64_t>(source->table->num_rows()));
    return *source;
  }

  std::vector<BoundResidual> filters;
  filters.reserve(node->pred_ids().size());
  for (int pred_id : node->pred_ids()) {
    const Predicate& pred = query_.predicate(pred_id);
    MONSOON_ASSIGN_OR_RETURN(BoundResidual residual,
                             BindResidual(pred, source->schema, *registry_));
    // Leaf residuals evaluate over the source expression itself, so the
    // store's evaluate-once columns apply positionally. Join-kind filters
    // need both sides cached to skip per-row evaluation.
    UdfColumnCache* cache = store->udf_cache();
    if (cache->enabled()) {
      MONSOON_ASSIGN_OR_RETURN(
          residual.left_col,
          TolerateCacheFault(
              ctx, cache->GetOrBuild(source->sig, pred.left.term_id,
                                     residual.left, source->table, ctx->pool(),
                                     ctx->morsel_size(), ctx->cancel_token())));
      if (residual.kind != BoundResidual::Kind::kSelectionEq &&
          residual.left_col != nullptr) {
        MONSOON_ASSIGN_OR_RETURN(
            residual.right_col,
            TolerateCacheFault(
                ctx, cache->GetOrBuild(source->sig, pred.right->term_id,
                                       residual.right, source->table,
                                       ctx->pool(), ctx->morsel_size(),
                                       ctx->cancel_token())));
        if (residual.right_col == nullptr) residual.left_col = nullptr;
      }
    }
    filters.push_back(std::move(residual));
  }

  auto out = std::make_shared<Table>(source->schema);
  const Table& in = *source->table;
  // The per-row fault point models the residual UDF call failing for that
  // row; `row` is the global input index, so the firing site is the same
  // at every thread count.
  auto filter_range = [&filters, &in](Table* dst, size_t begin,
                                      size_t end) -> Status {
    for (size_t row = begin; row < end; ++row) {
      MONSOON_FAULT_POINT("exec.udf_eval.filter", row);
      bool keep = true;
      for (const auto& filter : filters) {
        if (!filter.Eval(in, row)) {
          keep = false;
          break;
        }
      }
      if (keep) dst->AppendRowFrom(in, row);
    }
    return Status::OK();
  };
  if (WorthParallel(ctx, in.num_rows())) {
    // Morsel-driven scan: each morsel filters into a local table; the
    // barrier concatenates them in morsel order, so the output row order
    // is identical to the serial scan's.
    size_t num_morsels = parallel::NumMorsels(in.num_rows(), ctx->morsel_size());
    std::vector<Table> locals(num_morsels, Table(source->schema));
    MONSOON_RETURN_IF_ERROR(parallel::ParallelFor(
        ctx->pool(), in.num_rows(), ctx->morsel_size(), ctx->cancel_token(),
        [&](size_t m, size_t begin, size_t end) {
          MONSOON_DCHECK(m < locals.size());
          return filter_range(&locals[m], begin, end);
        }));
    for (Table& local : locals) out->TakeRowsFrom(&local);
  } else {
    // Serial scan in morsel-sized chunks so cancellation latency matches
    // the parallel path (one poll per morsel boundary).
    for (size_t begin = 0; begin < in.num_rows(); begin += ctx->morsel_size()) {
      MONSOON_RETURN_IF_ERROR(ctx->CheckCancelled());
      size_t end = std::min(in.num_rows(), begin + ctx->morsel_size());
      MONSOON_RETURN_IF_ERROR(filter_range(out.get(), begin, end));
    }
  }

  span.Arg("rows_out", static_cast<uint64_t>(out->num_rows()));
  MaterializedExpr result;
  result.sig = node->output_sig();
  result.schema = source->schema;
  result.table = std::move(out);
  return result;
}

StatusOr<MaterializedExpr> Executor::ExecuteJoin(const PlanNode::Ptr& node,
                                                 MaterializedExpr left,
                                                 MaterializedExpr right,
                                                 MaterializedStore* store,
                                                 ExecContext* ctx) const {
  static obs::Counter* const join_ops_metric =
      obs::Registry::Global().GetCounter("exec.join_ops");
  static obs::Histogram* const join_rows_metric =
      obs::Registry::Global().GetHistogram("exec.join_rows_out");

  join_ops_metric->Add(1);
  obs::TraceSpan span("exec", "join");
  span.Arg("rows_left", static_cast<uint64_t>(left.table->num_rows()))
      .Arg("rows_right", static_cast<uint64_t>(right.table->num_rows()));
  const char* algo = "cross";

  RelSet left_rels(left.sig.rels);
  RelSet right_rels(right.sig.rels);
  Schema out_schema = Schema::Concat(left.schema, right.schema);

  // Split node predicates into hash-joinable pairs and residual filters.
  struct EquiPair {
    BoundTerm left_key;     // bound against the LEFT child schema
    BoundTerm right_key;    // bound against the RIGHT child schema
    int left_term_id = -1;  // cache keys for the two sides
    int right_term_id = -1;
  };
  std::vector<EquiPair> equi;
  std::vector<BoundResidual> residual;
  for (int pred_id : node->pred_ids()) {
    const Predicate& pred = query_.predicate(pred_id);
    bool separable = false;
    if (pred.IsEquiJoin()) {
      const UdfTerm* lterm = nullptr;
      const UdfTerm* rterm = nullptr;
      if (left_rels.ContainsAll(pred.left.rels) &&
          right_rels.ContainsAll(pred.right->rels)) {
        lterm = &pred.left;
        rterm = &*pred.right;
      } else if (right_rels.ContainsAll(pred.left.rels) &&
                 left_rels.ContainsAll(pred.right->rels)) {
        lterm = &*pred.right;
        rterm = &pred.left;
      }
      if (lterm != nullptr) {
        EquiPair pair;
        MONSOON_ASSIGN_OR_RETURN(pair.left_key,
                                 BoundTerm::Bind(*lterm, left.schema, *registry_));
        MONSOON_ASSIGN_OR_RETURN(pair.right_key,
                                 BoundTerm::Bind(*rterm, right.schema, *registry_));
        pair.left_term_id = lterm->term_id;
        pair.right_term_id = rterm->term_id;
        equi.push_back(std::move(pair));
        separable = true;
      }
    }
    if (!separable) {
      MONSOON_ASSIGN_OR_RETURN(BoundResidual filter,
                               BindResidual(pred, out_schema, *registry_));
      residual.push_back(std::move(filter));
    }
  }

  // Evaluate-once key columns over both children. When every key of every
  // equi pair is cached, build/probe read flat columns and compare cached
  // hashes first — no per-row Value allocation for string keys. Any miss
  // (cache disabled / oversized column) falls back to per-row evaluation
  // for the whole join, keeping the two paths easy to ablate.
  std::vector<CachedUdfColumnPtr> left_cols(equi.size());
  std::vector<CachedUdfColumnPtr> right_cols(equi.size());
  bool keys_cached = store->udf_cache()->enabled() && !equi.empty() &&
                     StoreResident(*store, left) && StoreResident(*store, right);
  if (keys_cached) {
    UdfColumnCache* cache = store->udf_cache();
    for (size_t k = 0; k < equi.size(); ++k) {
      MONSOON_ASSIGN_OR_RETURN(
          left_cols[k],
          TolerateCacheFault(
              ctx, cache->GetOrBuild(left.sig, equi[k].left_term_id,
                                     equi[k].left_key, left.table, ctx->pool(),
                                     ctx->morsel_size(), ctx->cancel_token())));
      MONSOON_ASSIGN_OR_RETURN(
          right_cols[k],
          TolerateCacheFault(
              ctx, cache->GetOrBuild(right.sig, equi[k].right_term_id,
                                     equi[k].right_key, right.table,
                                     ctx->pool(), ctx->morsel_size(),
                                     ctx->cancel_token())));
      if (left_cols[k] == nullptr || right_cols[k] == nullptr) {
        keys_cached = false;
        break;
      }
      // Positional reads against the wrong table are the cache's one fatal
      // failure mode; the staleness check makes this structurally true.
      MONSOON_DCHECK(left_cols[k]->size() == left.table->num_rows() &&
                     right_cols[k]->size() == right.table->num_rows())
          << "cached join key column size diverged from its table";
    }
  }

  auto out = std::make_shared<Table>(out_schema);
  const Table& lt = *left.table;
  const Table& rt = *right.table;

  if (equi.empty()) {
    // Cross product with residual filters (multi-table UDF predicates and
    // genuine cross products both land here).
    if (WorthParallel(ctx, lt.num_rows()) && rt.num_rows() > 0) {
      // Morsels over the left input; every morsel pairs its left rows with
      // the whole right side into a local table. Work (candidate pairs) is
      // tallied in a shared atomic bounded by the remaining budget, so a
      // runaway product still trips ResourceExhausted — at left-row
      // granularity instead of per pair.
      size_t morsel = ctx->morsel_size();
      size_t num_morsels = parallel::NumMorsels(lt.num_rows(), morsel);
      std::vector<Table> locals(num_morsels, Table(out_schema));
      std::atomic<uint64_t> shared_work{0};
      const uint64_t work_limit = ctx->RemainingWork();
      Status loop = parallel::ParallelFor(
          ctx->pool(), lt.num_rows(), morsel, ctx->cancel_token(),
          [&](size_t m, size_t begin, size_t end) -> Status {
            MONSOON_DCHECK(m < locals.size());
            Table& local = locals[m];
            for (size_t li = begin; li < end; ++li) {
              MONSOON_FAULT_POINT("exec.udf_eval.cross", li);
              for (size_t ri = 0; ri < rt.num_rows(); ++ri) {
                EmitIfPasses(&local, lt, li, rt, ri, residual);
              }
              uint64_t before = shared_work.fetch_add(rt.num_rows());
              if (before + rt.num_rows() > work_limit) {
                return Status::ResourceExhausted("work budget exceeded");
              }
            }
            return Status::OK();
          });
      Status charged = ctx->ChargeWork(shared_work.load());
      MONSOON_RETURN_IF_ERROR(loop);
      MONSOON_RETURN_IF_ERROR(charged);
      for (Table& local : locals) out->TakeRowsFrom(&local);
    } else {
      for (size_t li = 0; li < lt.num_rows(); ++li) {
        MONSOON_RETURN_IF_ERROR(ctx->CheckCancelled());
        MONSOON_FAULT_POINT("exec.udf_eval.cross", li);
        for (size_t ri = 0; ri < rt.num_rows(); ++ri) {
          MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(1));
          EmitIfPasses(out.get(), lt, li, rt, ri, residual);
        }
      }
    }
  } else if (options_.join_algorithm == JoinAlgorithm::kSortMerge) {
    // Sort-merge join: materialize composite keys, sort row ids on both
    // sides, then merge runs of equal keys. Stays serial — it exists as
    // bench_micro's ablation of the (default, parallelized) hash join.
    algo = "sort-merge";
    size_t nkeys = equi.size();
    auto make_keys = [&](const Table& table, bool is_left,
                         std::vector<Value>* keys,
                         std::vector<size_t>* order) -> Status {
      const auto& cols = is_left ? left_cols : right_cols;
      keys->reserve(table.num_rows() * nkeys);
      for (size_t row = 0; row < table.num_rows(); ++row) {
        if (row % 2048 == 0) MONSOON_RETURN_IF_ERROR(ctx->CheckCancelled());
        MONSOON_FAULT_POINT("exec.udf_eval.join_key", row);
        for (size_t k = 0; k < nkeys; ++k) {
          if (keys_cached) {
            keys->push_back(cols[k]->ValueAt(row));
          } else {
            const auto& pair = equi[k];
            const BoundTerm& key = is_left ? pair.left_key : pair.right_key;
            keys->push_back(key.Eval(table, row));
          }
        }
      }
      order->resize(table.num_rows());
      for (size_t i = 0; i < order->size(); ++i) (*order)[i] = i;
      std::sort(order->begin(), order->end(), [&](size_t a, size_t b) {
        for (size_t k = 0; k < nkeys; ++k) {
          const Value& va = (*keys)[a * nkeys + k];
          const Value& vb = (*keys)[b * nkeys + k];
          if (va < vb) return true;
          if (vb < va) return false;
        }
        return false;
      });
      return Status::OK();
    };
    std::vector<Value> lkeys, rkeys;
    std::vector<size_t> lorder, rorder;
    MONSOON_RETURN_IF_ERROR(make_keys(lt, /*is_left=*/true, &lkeys, &lorder));
    MONSOON_RETURN_IF_ERROR(make_keys(rt, /*is_left=*/false, &rkeys, &rorder));
    MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(lt.num_rows() + rt.num_rows()));

    auto key_equal = [&](size_t li, size_t ri) {
      for (size_t k = 0; k < nkeys; ++k) {
        if (!(lkeys[li * nkeys + k] == rkeys[ri * nkeys + k])) return false;
      }
      return true;
    };
    // Lexicographic comparison of a left-side key against a right-side key.
    auto key_less = [&](size_t li, size_t ri) {
      for (size_t k = 0; k < nkeys; ++k) {
        const Value& a = lkeys[li * nkeys + k];
        const Value& b = rkeys[ri * nkeys + k];
        if (a < b) return true;
        if (b < a) return false;
      }
      return false;
    };
    auto key_greater = [&](size_t li, size_t ri) {
      for (size_t k = 0; k < nkeys; ++k) {
        const Value& a = lkeys[li * nkeys + k];
        const Value& b = rkeys[ri * nkeys + k];
        if (b < a) return true;
        if (a < b) return false;
      }
      return false;
    };
    auto same_side_equal = [&](const std::vector<Value>& keys, size_t a, size_t b) {
      for (size_t k = 0; k < nkeys; ++k) {
        if (!(keys[a * nkeys + k] == keys[b * nkeys + k])) return false;
      }
      return true;
    };

    size_t li = 0, ri = 0;
    while (li < lorder.size() && ri < rorder.size()) {
      size_t lrow = lorder[li];
      size_t rrow = rorder[ri];
      if (key_less(lrow, rrow)) {
        ++li;
        continue;
      }
      if (key_greater(lrow, rrow)) {
        ++ri;
        continue;
      }
      if (!key_equal(lrow, rrow)) {
        // Keys of different types compare unordered-equal; skip safely.
        ++li;
        continue;
      }
      // Extents of the equal run on both sides.
      size_t lend = li + 1;
      while (lend < lorder.size() && same_side_equal(lkeys, lorder[lend], lrow)) {
        ++lend;
      }
      size_t rend = ri + 1;
      while (rend < rorder.size() && same_side_equal(rkeys, rorder[rend], rrow)) {
        ++rend;
      }
      for (size_t a = li; a < lend; ++a) {
        for (size_t b = ri; b < rend; ++b) {
          MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(1));
          EmitIfPasses(out.get(), lt, lorder[a], rt, rorder[b], residual);
        }
      }
      li = lend;
      ri = rend;
    }
  } else if (WorthParallel(ctx, std::max(lt.num_rows(), rt.num_rows()))) {
    // Parallel hash join: partitioned build + morsel-driven probe.
    algo = "hash-parallel";
    obs::TraceSpan build_span("exec", "join.build");
    bool build_left = lt.num_rows() <= rt.num_rows();
    const Table& build = build_left ? lt : rt;
    const Table& probe = build_left ? rt : lt;
    size_t nkeys = equi.size();
    size_t morsel = ctx->morsel_size();
    parallel::ThreadPool* pool = ctx->pool();

    // Per-side key vectors, hoisted and reserve()d once instead of
    // re-selecting build_left per row per key (fallback path), and the
    // cached columns oriented the same way.
    std::vector<const BoundTerm*> build_terms;
    std::vector<const BoundTerm*> probe_terms;
    build_terms.reserve(nkeys);
    probe_terms.reserve(nkeys);
    for (const auto& pair : equi) {
      build_terms.push_back(build_left ? &pair.left_key : &pair.right_key);
      probe_terms.push_back(build_left ? &pair.right_key : &pair.left_key);
    }
    const auto& build_cols = build_left ? left_cols : right_cols;
    const auto& probe_cols = build_left ? right_cols : left_cols;

    // Build phase 1 (parallel): composite key hashes, from cached hash
    // columns when available (strings never re-hashed, no Value boxing);
    // the fallback additionally materializes the key Values for the
    // probe's confirm step. Morsels write disjoint ranges.
    std::vector<Value> build_keys(keys_cached ? 0 : build.num_rows() * nkeys);
    std::vector<uint64_t> build_hashes(build.num_rows());
    MONSOON_RETURN_IF_ERROR(parallel::ParallelFor(
        pool, build.num_rows(), morsel, ctx->cancel_token(),
        [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t row = begin; row < end; ++row) {
            MONSOON_FAULT_POINT("exec.udf_eval.join_build", row);
            uint64_t h = kJoinHashSeed;
            for (size_t k = 0; k < nkeys; ++k) {
              if (keys_cached) {
                h = HashCombine(h, build_cols[k]->HashAt(row));
              } else {
                Value v = build_terms[k]->Eval(build, row);
                h = HashCombine(h, v.Hash());
                build_keys[row * nkeys + k] = std::move(v);
              }
            }
            build_hashes[row] = h;
          }
          return Status::OK();
        }));

    // Build phase 2: scatter rows to partitions in row order (serial, a
    // pointer append per row), then build each partition's table in
    // parallel. Per-partition row order equals global build order, so the
    // partition tables are independent of the thread count.
    std::vector<std::vector<size_t>> partition_rows(kBuildPartitions);
    for (auto& rows : partition_rows) {
      rows.reserve(build.num_rows() / kBuildPartitions + 1);
    }
    for (size_t row = 0; row < build.num_rows(); ++row) {
      size_t p = build_hashes[row] >> kBuildPartitionShift;
      MONSOON_DCHECK(p < kBuildPartitions);
      partition_rows[p].push_back(row);
    }
    std::vector<std::unordered_multimap<uint64_t, size_t>> partitions(
        kBuildPartitions);
    MONSOON_RETURN_IF_ERROR(parallel::ParallelFor(
        pool, kBuildPartitions, 1, ctx->cancel_token(),
        [&](size_t p, size_t, size_t) {
          partitions[p].reserve(partition_rows[p].size() * 2);
          for (size_t row : partition_rows[p]) {
            partitions[p].emplace(build_hashes[row], row);
          }
          return Status::OK();
        }));
    MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(build.num_rows()));
    build_span.Arg("rows", static_cast<uint64_t>(build.num_rows()));
    build_span.End();

    // Probe phase (parallel): morsels emit into local tables merged in
    // morsel order; probe work (rows + hash candidates) accumulates in a
    // shared atomic tally charged once at the barrier, bounded by the
    // remaining budget so oversized joins still trip the timeout.
    obs::TraceSpan probe_span("exec", "join.probe");
    probe_span.Arg("rows", static_cast<uint64_t>(probe.num_rows()));
    size_t num_morsels = parallel::NumMorsels(probe.num_rows(), morsel);
    std::vector<Table> locals(num_morsels, Table(out_schema));
    std::atomic<uint64_t> shared_work{0};
    const uint64_t work_limit = ctx->RemainingWork();
    Status loop = parallel::ParallelFor(
        pool, probe.num_rows(), morsel, ctx->cancel_token(),
        [&](size_t m, size_t begin, size_t end) -> Status {
          MONSOON_DCHECK(m < locals.size());
          Table& local = locals[m];
          // Scratch key buffer for the fallback path, reused across the
          // whole morsel (Value assignment recycles string capacity).
          std::vector<Value> probe_key(keys_cached ? 0 : nkeys);
          uint64_t local_work = 0;
          for (size_t row = begin; row < end; ++row) {
            MONSOON_FAULT_POINT("exec.udf_eval.join_probe", row);
            ++local_work;
            uint64_t h = kJoinHashSeed;
            if (keys_cached) {
              for (size_t k = 0; k < nkeys; ++k) {
                h = HashCombine(h, probe_cols[k]->HashAt(row));
              }
            } else {
              for (size_t k = 0; k < nkeys; ++k) {
                probe_key[k] = probe_terms[k]->Eval(probe, row);
                h = HashCombine(h, probe_key[k].Hash());
              }
            }
            const auto& index = partitions[h >> kBuildPartitionShift];
            auto [it, last] = index.equal_range(h);
            for (; it != last; ++it) {
              ++local_work;
              size_t build_row = it->second;
              bool match = true;
              for (size_t k = 0; k < nkeys; ++k) {
                bool eq = keys_cached
                              ? CachedUdfColumn::Equal(*build_cols[k], build_row,
                                                       *probe_cols[k], row)
                              : build_keys[build_row * nkeys + k] == probe_key[k];
                if (!eq) {
                  match = false;
                  break;
                }
              }
              if (!match) continue;
              EmitIfPasses(&local, lt, build_left ? build_row : row, rt,
                           build_left ? row : build_row, residual);
            }
          }
          uint64_t before = shared_work.fetch_add(local_work);
          if (before + local_work > work_limit) {
            return Status::ResourceExhausted("work budget exceeded");
          }
          return Status::OK();
        });
    Status charged = ctx->ChargeWork(shared_work.load());
    MONSOON_RETURN_IF_ERROR(loop);
    MONSOON_RETURN_IF_ERROR(charged);
    for (Table& local : locals) out->TakeRowsFrom(&local);
  } else {
    // Serial hash join: build on the smaller input.
    algo = "hash-serial";
    obs::TraceSpan build_span("exec", "join.build");
    bool build_left = lt.num_rows() <= rt.num_rows();
    const Table& build = build_left ? lt : rt;
    const Table& probe = build_left ? rt : lt;

    size_t nkeys = equi.size();
    // Hoisted per-side key vectors and reserve()d scratch buffers shared
    // by the cached and fallback paths (see the parallel join above).
    std::vector<const BoundTerm*> build_terms;
    std::vector<const BoundTerm*> probe_terms;
    build_terms.reserve(nkeys);
    probe_terms.reserve(nkeys);
    for (const auto& pair : equi) {
      build_terms.push_back(build_left ? &pair.left_key : &pair.right_key);
      probe_terms.push_back(build_left ? &pair.right_key : &pair.left_key);
    }
    const auto& build_cols = build_left ? left_cols : right_cols;
    const auto& probe_cols = build_left ? right_cols : left_cols;

    // Evaluate the composite key for every build row (from cached columns
    // when available — the Value vector is then skipped entirely).
    std::vector<Value> build_keys;
    if (!keys_cached) build_keys.reserve(build.num_rows() * nkeys);
    std::unordered_multimap<uint64_t, size_t> index;
    index.reserve(build.num_rows() * 2);
    for (size_t row = 0; row < build.num_rows(); ++row) {
      if (row % 2048 == 0) MONSOON_RETURN_IF_ERROR(ctx->CheckCancelled());
      MONSOON_FAULT_POINT("exec.udf_eval.join_build", row);
      uint64_t h = kJoinHashSeed;
      for (size_t k = 0; k < nkeys; ++k) {
        if (keys_cached) {
          h = HashCombine(h, build_cols[k]->HashAt(row));
        } else {
          Value v = build_terms[k]->Eval(build, row);
          h = HashCombine(h, v.Hash());
          build_keys.push_back(std::move(v));
        }
      }
      index.emplace(h, row);
    }
    MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(build.num_rows()));
    build_span.Arg("rows", static_cast<uint64_t>(build.num_rows()));
    build_span.End();

    obs::TraceSpan probe_span("exec", "join.probe");
    probe_span.Arg("rows", static_cast<uint64_t>(probe.num_rows()));
    std::vector<Value> probe_key(keys_cached ? 0 : nkeys);
    for (size_t row = 0; row < probe.num_rows(); ++row) {
      if (row % 2048 == 0) MONSOON_RETURN_IF_ERROR(ctx->CheckCancelled());
      MONSOON_FAULT_POINT("exec.udf_eval.join_probe", row);
      MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(1));
      uint64_t h = kJoinHashSeed;
      if (keys_cached) {
        for (size_t k = 0; k < nkeys; ++k) {
          h = HashCombine(h, probe_cols[k]->HashAt(row));
        }
      } else {
        for (size_t k = 0; k < nkeys; ++k) {
          probe_key[k] = probe_terms[k]->Eval(probe, row);
          h = HashCombine(h, probe_key[k].Hash());
        }
      }
      auto [begin, end] = index.equal_range(h);
      for (auto it = begin; it != end; ++it) {
        size_t build_row = it->second;
        MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(1));
        bool match = true;
        for (size_t k = 0; k < nkeys; ++k) {
          bool eq = keys_cached
                        ? CachedUdfColumn::Equal(*build_cols[k], build_row,
                                                 *probe_cols[k], row)
                        : build_keys[build_row * nkeys + k] == probe_key[k];
          if (!eq) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        size_t li = build_left ? build_row : row;
        size_t ri = build_left ? row : build_row;
        EmitIfPasses(out.get(), lt, li, rt, ri, residual);
      }
    }
  }

  // The join's output objects are the paper's cost for this node.
  MONSOON_RETURN_IF_ERROR(ctx->Charge(out->num_rows()));
  join_rows_metric->Observe(out->num_rows());
  span.Arg("algo", algo)
      .Arg("keys_cached", keys_cached)
      .Arg("rows_out", static_cast<uint64_t>(out->num_rows()));

  MaterializedExpr result;
  result.sig = node->output_sig();
  result.schema = std::move(out_schema);
  result.table = std::move(out);
  return result;
}

Status Executor::CollectStats(const MaterializedExpr& expr,
                              MaterializedStore* store, ExecContext* ctx,
                              std::vector<DistinctObservation>* obs) const {
  // Fully qualified: the `obs` out-parameter shadows the obs:: namespace.
  static ::monsoon::obs::Counter* const sigma_ops_metric =
      ::monsoon::obs::Registry::Global().GetCounter("exec.sigma_ops");

  sigma_ops_metric->Add(1);
  ::monsoon::obs::TraceSpan span("exec", "sigma");
  span.Arg("rows", static_cast<uint64_t>(expr.table->num_rows()));
  WallTimer timer;
  RelSet expr_rels(expr.sig.rels);

  // One HLL pass per UDF term evaluable over this expression (the paper's
  // Σ computes "the number of distinct values returned by r for all UDFs
  // that are referenced in the query").
  std::vector<std::pair<int, BoundTerm>> terms;
  std::vector<int> seen;
  for (const UdfTerm* term : query_.AllTerms()) {
    if (!expr_rels.ContainsAll(term->rels)) continue;
    if (std::find(seen.begin(), seen.end(), term->term_id) != seen.end()) continue;
    seen.push_back(term->term_id);
    MONSOON_ASSIGN_OR_RETURN(BoundTerm bound,
                             BoundTerm::Bind(*term, expr.schema, *registry_));
    terms.emplace_back(term->term_id, std::move(bound));
  }
  span.Arg("terms", static_cast<uint64_t>(terms.size()));
  if (terms.empty()) return Status::OK();

  // Whole-pass fault point (coordinate = input cardinality, identical in
  // serial and parallel execution): lets fault specs kill Σ passes
  // outright to exercise the prior-only degradation path.
  MONSOON_FAULT_POINT("exec.sigma.pass", expr.table->num_rows());

  // Evaluate-once columns per term: repeated Σ passes over the same
  // materialized expression (the plan → Σ → re-plan loop) hit the cache
  // and feed precomputed hashes straight into the sketches. Terms whose
  // column is unavailable fall back per-row, independently of the rest.
  std::vector<CachedUdfColumnPtr> term_cols(terms.size());
  if (store != nullptr && store->udf_cache()->enabled() &&
      StoreResident(*store, expr)) {
    for (size_t t = 0; t < terms.size(); ++t) {
      MONSOON_ASSIGN_OR_RETURN(
          term_cols[t],
          TolerateCacheFault(
              ctx, store->udf_cache()->GetOrBuild(
                       expr.sig, terms[t].first, terms[t].second, expr.table,
                       ctx->pool(), ctx->morsel_size(), ctx->cancel_token())));
    }
  }
  for (size_t t = 0; t < terms.size(); ++t) {
    MONSOON_DCHECK(term_cols[t] == nullptr ||
                   term_cols[t]->size() == expr.table->num_rows())
        << "cached column for term " << terms[t].first << " is stale";
  }
  auto term_hash = [&](size_t t, size_t row) {
    return term_cols[t] != nullptr
               ? term_cols[t]->HashAt(row)
               : terms[t].second.Eval(*expr.table, row).Hash();
  };

  std::vector<HyperLogLog> sketches(terms.size(),
                                    HyperLogLog(options_.hll_precision));
  const Table& table = *expr.table;
  if (WorthParallel(ctx, table.num_rows())) {
    // One sketch set per morsel, merged at the barrier. The HLL merge is
    // register-wise max — exact, order- and grouping-independent — so the
    // observed distinct counts are bit-identical to the serial pass. Σ
    // morsels are widened to a handful per thread: sketch sets cost 2^p
    // bytes per term each, so many small morsels would waste memory for
    // no extra balance.
    parallel::ThreadPool* pool = ctx->pool();
    size_t morsel =
        std::max(ctx->morsel_size(),
                 table.num_rows() / (4 * static_cast<size_t>(pool->num_threads())) + 1);
    size_t num_morsels = parallel::NumMorsels(table.num_rows(), morsel);
    std::vector<std::vector<HyperLogLog>> morsel_sketches(
        num_morsels,
        std::vector<HyperLogLog>(terms.size(), HyperLogLog(options_.hll_precision)));
    MONSOON_RETURN_IF_ERROR(parallel::ParallelFor(
        pool, table.num_rows(), morsel, ctx->cancel_token(),
        [&](size_t m, size_t begin, size_t end) -> Status {
          std::vector<HyperLogLog>& local = morsel_sketches[m];
          for (size_t row = begin; row < end; ++row) {
            MONSOON_FAULT_POINT("exec.udf_eval.sigma", row);
            for (size_t t = 0; t < terms.size(); ++t) {
              local[t].AddHash(term_hash(t, row));
            }
          }
          return Status::OK();
        }));
    for (const std::vector<HyperLogLog>& local : morsel_sketches) {
      // Register-wise max requires equal precision on every per-morsel
      // sketch; all are built from options_.hll_precision above.
      MONSOON_DCHECK(local.size() == sketches.size());
      for (size_t t = 0; t < terms.size(); ++t) {
        MONSOON_RETURN_IF_ERROR(sketches[t].Merge(local[t]));
      }
    }
  } else {
    for (size_t row = 0; row < table.num_rows(); ++row) {
      if (row % 2048 == 0) MONSOON_RETURN_IF_ERROR(ctx->CheckCancelled());
      MONSOON_FAULT_POINT("exec.udf_eval.sigma", row);
      for (size_t t = 0; t < terms.size(); ++t) {
        sketches[t].AddHash(term_hash(t, row));
      }
    }
  }
  // Statistics collection is another pass over the data (Sec. 4.4). The
  // charge stays at the END of the pass on purpose: a Σ pass lost to a
  // fault charges exactly nothing at every thread count, which keeps
  // degraded-run accounting deterministic.
  MONSOON_RETURN_IF_ERROR(ctx->Charge(table.num_rows()));

  for (size_t t = 0; t < terms.size(); ++t) {
    DistinctObservation observation;
    observation.term_id = terms[t].first;
    observation.expr = expr.sig;
    observation.distinct_count = std::max(0.0, std::round(sketches[t].Estimate()));
    obs->push_back(observation);
  }
  ctx->AddStatsCollectSeconds(timer.Seconds());
  return Status::OK();
}

}  // namespace monsoon
