#include "exec/udf_cache.h"

#include <atomic>

#include "common/check.h"
#include "common/env.h"
#include "common/hash.h"
#include "fault/injector.h"
#include "parallel/parallel_for.h"

namespace monsoon {

namespace {

constexpr size_t kDefaultUdfCacheBytes = size_t{256} << 20;  // 256 MiB

std::atomic<size_t>& DefaultBytesHolder() {
  static std::atomic<size_t> holder = static_cast<size_t>(
      EnvUint64("MONSOON_UDF_CACHE", kDefaultUdfCacheBytes));
  return holder;
}

}  // namespace

size_t DefaultUdfCacheBytes() { return DefaultBytesHolder().load(); }

void SetDefaultUdfCacheBytes(size_t bytes) { DefaultBytesHolder().store(bytes); }

void UdfColumnCache::set_byte_budget(size_t bytes) {
  MutexLock lock(mu_);
  byte_budget_ = bytes;
  EvictToFit(0);
}

void UdfColumnCache::Evict(std::map<Key, Entry>::iterator it) {
  MONSOON_DCHECK(stats_.bytes_in_use >= it->second.column->ApproxBytes())
      << "resident-byte accounting drifted below an entry's size";
  stats_.bytes_in_use -= it->second.column->ApproxBytes();
  ++stats_.evictions;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void UdfColumnCache::EvictToFit(size_t incoming_bytes) {
  while (!lru_.empty() && stats_.bytes_in_use + incoming_bytes > byte_budget_) {
    Evict(entries_.find(lru_.back()));
  }
}

StatusOr<CachedUdfColumnPtr> UdfColumnCache::GetOrBuild(
    const ExprSig& sig, int term_id, const BoundTerm& bound,
    const TablePtr& table, parallel::ThreadPool* pool, size_t morsel_size,
    fault::CancellationToken* token) {
  Key key{sig.rels, sig.preds, term_id, 0, table->num_rows()};
  {
    MutexLock lock(mu_);
    if (byte_budget_ == 0) return CachedUdfColumnPtr();
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.table.lock().get() == table.get()) {
        // A resident column must index the exact rows of the table it was
        // built from; serving a differently-sized column would read join
        // keys positionally against the wrong rows.
        MONSOON_DCHECK(it->second.column->size() == table->num_rows())
            << "cached column rows diverged from its source table";
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        return it->second.column;
      }
      // Same signature re-materialized as a different physical table (e.g.
      // a different join order across EXECUTE rounds permuted the rows):
      // the positional column is stale.
      Evict(it);
    }
  }
  // The miss path builds outside the lock: the fill may fan out through
  // the pool, and a blocking TaskGroup::Wait under mu_ would both stall
  // concurrent readers and violate the lock-rank rule (a stolen task
  // could itself need this cache).

  // Miss: evaluate the term once per row into a flat typed column.
  auto column = std::make_shared<CachedUdfColumn>();
  const Table& t = *table;
  size_t n = t.num_rows();
  column->type_ = bound.result_type();
  column->size_ = n;
  switch (column->type_) {
    case ValueType::kInt64:
      column->int64s_.resize(n);
      break;
    case ValueType::kDouble:
      column->doubles_.resize(n);
      break;
    case ValueType::kString:
      column->strings_.resize(n);
      column->hashes_.resize(n);
      break;
  }
  // Morsels write disjoint index ranges of the presized vectors; the fill
  // is the only parallel section and is never charged to the work/object
  // counters (the cache is invisible to the paper's cost model).
  MONSOON_RETURN_IF_ERROR(parallel::ParallelFor(
      pool, n, morsel_size == 0 ? 1 : morsel_size, token,
      [&](size_t, size_t begin, size_t end) -> Status {
        // Disjoint-range fill: writing past the presized column would race
        // with the neighbouring morsel.
        MONSOON_DCHECK(begin <= end && end <= n) << "morsel out of bounds";
        for (size_t row = begin; row < end; ++row) {
          // UDF evaluation dominates each iteration, so a per-row poll is
          // noise here — and a slow UDF is exactly when cancellation
          // latency matters. (Spelled without MONSOON_RETURN_IF_ERROR:
          // this lambda already sits inside that macro's expansion and the
          // nested temporary would shadow it.)
          if (token != nullptr) {
            Status polled = token->Check();
            if (!polled.ok()) return polled;
          }
          MONSOON_FAULT_POINT("exec.udf_cache.fill", row);
          Value v = bound.Eval(t, row);
          if (v.type() != column->type_) {
            return Status::Internal("UDF produced a value of unexpected type");
          }
          switch (column->type_) {
            case ValueType::kInt64:
              column->int64s_[row] = v.AsInt64();
              break;
            case ValueType::kDouble:
              column->doubles_[row] = v.AsDouble();
              break;
            case ValueType::kString:
              column->strings_[row] = v.AsString();
              column->hashes_[row] = HashString(column->strings_[row]);
              break;
          }
        }
        return Status::OK();
      }));

  size_t bytes = sizeof(CachedUdfColumn);
  switch (column->type_) {
    case ValueType::kInt64:
      bytes += n * sizeof(int64_t);
      break;
    case ValueType::kDouble:
      bytes += n * sizeof(double);
      break;
    case ValueType::kString:
      bytes += n * (sizeof(std::string) + sizeof(uint64_t));
      for (const std::string& s : column->strings_) bytes += s.capacity();
      break;
  }
  column->bytes_ = bytes;

  MutexLock lock(mu_);
  ++stats_.misses;
  stats_.bytes_built += bytes;

  // Retain only if it fits; an oversized column is still returned (the
  // caller's shared_ptr pins it for the current operator) but the next
  // lookup will rebuild it. A concurrent builder may have published the
  // same key while we were filling — its entry is replaced, not leaked.
  if (bytes <= byte_budget_) {
    auto existing = entries_.find(key);
    if (existing != entries_.end()) Evict(existing);
    EvictToFit(bytes);
    lru_.push_front(key);
    entries_[key] = Entry{table, column, lru_.begin()};
    stats_.bytes_in_use += bytes;
  }
  return CachedUdfColumnPtr(column);
}

StatusOr<CachedUdfColumnPtr> UdfColumnCache::GetOrBuildShard(
    const ExprSig& sig, int term_id, const BoundTerm& bound,
    const TablePtr& table, size_t begin, size_t end,
    fault::CancellationToken* token) {
  MONSOON_DCHECK(begin <= end && end <= table->num_rows())
      << "shard range out of bounds";
  Key key{sig.rels, sig.preds, term_id, begin, end};
  {
    MutexLock lock(mu_);
    if (byte_budget_ == 0) return CachedUdfColumnPtr();
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.table.lock().get() == table.get()) {
        MONSOON_DCHECK(it->second.column->size() == end - begin)
            << "cached shard column rows diverged from its key range";
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        return it->second.column;
      }
      Evict(it);
    }
  }
  // Miss: serial per-row fill into local slots [0, end - begin). The
  // caller IS a pool task (one shard body); fanning out again would only
  // fight siblings for workers. A retried shard attempt re-enters here and
  // rebuilds from scratch — the previous attempt's partial column was a
  // local that died with the failed fill, never published.
  auto column = std::make_shared<CachedUdfColumn>();
  const Table& t = *table;
  const size_t n = end - begin;
  column->type_ = bound.result_type();
  column->size_ = n;
  switch (column->type_) {
    case ValueType::kInt64:
      column->int64s_.resize(n);
      break;
    case ValueType::kDouble:
      column->doubles_.resize(n);
      break;
    case ValueType::kString:
      column->strings_.resize(n);
      column->hashes_.resize(n);
      break;
  }
  for (size_t row = begin; row < end; ++row) {
    if (token != nullptr) {
      MONSOON_RETURN_IF_ERROR(token->Check());
    }
    // Absolute row coordinate: the injected failure site must not move
    // when the same rows are filled shard-by-shard instead of whole.
    MONSOON_FAULT_POINT("exec.udf_cache.fill", row);
    Value v = bound.Eval(t, row);
    if (v.type() != column->type_) {
      return Status::Internal("UDF produced a value of unexpected type");
    }
    const size_t slot = row - begin;
    switch (column->type_) {
      case ValueType::kInt64:
        column->int64s_[slot] = v.AsInt64();
        break;
      case ValueType::kDouble:
        column->doubles_[slot] = v.AsDouble();
        break;
      case ValueType::kString:
        column->strings_[slot] = v.AsString();
        column->hashes_[slot] = HashString(column->strings_[slot]);
        break;
    }
  }

  size_t bytes = sizeof(CachedUdfColumn);
  switch (column->type_) {
    case ValueType::kInt64:
      bytes += n * sizeof(int64_t);
      break;
    case ValueType::kDouble:
      bytes += n * sizeof(double);
      break;
    case ValueType::kString:
      bytes += n * (sizeof(std::string) + sizeof(uint64_t));
      for (const std::string& s : column->strings_) bytes += s.capacity();
      break;
  }
  column->bytes_ = bytes;

  MutexLock lock(mu_);
  ++stats_.misses;
  stats_.bytes_built += bytes;
  if (bytes <= byte_budget_) {
    auto existing = entries_.find(key);
    if (existing != entries_.end()) Evict(existing);
    EvictToFit(bytes);
    lru_.push_front(key);
    entries_[key] = Entry{table, column, lru_.begin()};
    stats_.bytes_in_use += bytes;
  }
  return CachedUdfColumnPtr(column);
}

}  // namespace monsoon
