#include "exec/udf_cache.h"

#include <atomic>
#include <cstdlib>

#include "common/hash.h"
#include "parallel/parallel_for.h"

namespace monsoon {

namespace {

constexpr size_t kDefaultUdfCacheBytes = size_t{256} << 20;  // 256 MiB

std::atomic<size_t>& DefaultBytesHolder() {
  static std::atomic<size_t> holder = [] {
    const char* env = std::getenv("MONSOON_UDF_CACHE");
    if (env != nullptr) {
      return static_cast<size_t>(std::strtoull(env, nullptr, 10));
    }
    return kDefaultUdfCacheBytes;
  }();
  return holder;
}

}  // namespace

size_t DefaultUdfCacheBytes() { return DefaultBytesHolder().load(); }

void SetDefaultUdfCacheBytes(size_t bytes) { DefaultBytesHolder().store(bytes); }

void UdfColumnCache::set_byte_budget(size_t bytes) {
  byte_budget_ = bytes;
  EvictToFit(0);
}

void UdfColumnCache::Evict(std::map<Key, Entry>::iterator it) {
  stats_.bytes_in_use -= it->second.column->ApproxBytes();
  ++stats_.evictions;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void UdfColumnCache::EvictToFit(size_t incoming_bytes) {
  while (!lru_.empty() && stats_.bytes_in_use + incoming_bytes > byte_budget_) {
    Evict(entries_.find(lru_.back()));
  }
}

StatusOr<CachedUdfColumnPtr> UdfColumnCache::GetOrBuild(
    const ExprSig& sig, int term_id, const BoundTerm& bound,
    const TablePtr& table, parallel::ThreadPool* pool, size_t morsel_size) {
  if (!enabled()) return CachedUdfColumnPtr();

  Key key{sig.rels, sig.preds, term_id};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.table.lock().get() == table.get()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.column;
    }
    // Same signature re-materialized as a different physical table (e.g. a
    // different join order across EXECUTE rounds permuted the rows): the
    // positional column is stale.
    Evict(it);
  }

  // Miss: evaluate the term once per row into a flat typed column.
  auto column = std::make_shared<CachedUdfColumn>();
  const Table& t = *table;
  size_t n = t.num_rows();
  column->type_ = bound.result_type();
  column->size_ = n;
  switch (column->type_) {
    case ValueType::kInt64:
      column->int64s_.resize(n);
      break;
    case ValueType::kDouble:
      column->doubles_.resize(n);
      break;
    case ValueType::kString:
      column->strings_.resize(n);
      column->hashes_.resize(n);
      break;
  }
  // Morsels write disjoint index ranges of the presized vectors; the fill
  // is the only parallel section and is never charged to the work/object
  // counters (the cache is invisible to the paper's cost model).
  MONSOON_RETURN_IF_ERROR(parallel::ParallelFor(
      pool, n, morsel_size == 0 ? 1 : morsel_size,
      [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t row = begin; row < end; ++row) {
          Value v = bound.Eval(t, row);
          if (v.type() != column->type_) {
            return Status::Internal("UDF produced a value of unexpected type");
          }
          switch (column->type_) {
            case ValueType::kInt64:
              column->int64s_[row] = v.AsInt64();
              break;
            case ValueType::kDouble:
              column->doubles_[row] = v.AsDouble();
              break;
            case ValueType::kString:
              column->strings_[row] = v.AsString();
              column->hashes_[row] = HashString(column->strings_[row]);
              break;
          }
        }
        return Status::OK();
      }));

  size_t bytes = sizeof(CachedUdfColumn);
  switch (column->type_) {
    case ValueType::kInt64:
      bytes += n * sizeof(int64_t);
      break;
    case ValueType::kDouble:
      bytes += n * sizeof(double);
      break;
    case ValueType::kString:
      bytes += n * (sizeof(std::string) + sizeof(uint64_t));
      for (const std::string& s : column->strings_) bytes += s.capacity();
      break;
  }
  column->bytes_ = bytes;
  ++stats_.misses;
  stats_.bytes_built += bytes;

  // Retain only if it fits; an oversized column is still returned (the
  // caller's shared_ptr pins it for the current operator) but the next
  // lookup will rebuild it.
  if (bytes <= byte_budget_) {
    EvictToFit(bytes);
    lru_.push_front(key);
    entries_[key] = Entry{table, column, lru_.begin()};
    stats_.bytes_in_use += bytes;
  }
  return CachedUdfColumnPtr(column);
}

}  // namespace monsoon
