#ifndef MONSOON_EXEC_MATERIALIZED_STORE_H_
#define MONSOON_EXEC_MATERIALIZED_STORE_H_

#include <map>
#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "exec/udf_cache.h"
#include "plan/plan_node.h"
#include "query/query_spec.h"
#include "shard/shard.h"
#include "storage/table.h"

namespace monsoon {

/// A materialized RA expression: data plus the alias-qualified schema used
/// to resolve UDF arguments against it. The table's own schema carries the
/// same column order; only the names differ (qualified per query alias).
/// `shards` is the table's hash-range shard layout (shard/shard.h), or
/// null when unsharded — the executor falls back to an even contiguous
/// split for shard-less tables, which preserves the accounting invariant.
struct MaterializedExpr {
  ExprSig sig;
  TablePtr table;
  Schema schema;
  shard::ShardMapPtr shards;
};

/// The R_e of the MDP state, with actual data attached: every expression
/// that has been executed and materialized so far, keyed by signature.
/// Initialized with the query's base relations.
class MaterializedStore {
 public:
  MaterializedStore()
      : udf_cache_(std::make_shared<UdfColumnCache>(DefaultUdfCacheBytes())) {}

  /// Loads each relation referenced by `query` from the catalog. The same
  /// base table may back several aliases; data is shared, schemas are
  /// qualified per alias.
  static StatusOr<MaterializedStore> ForQuery(const Catalog& catalog,
                                              const QuerySpec& query);

  StatusOr<const MaterializedExpr*> Lookup(const ExprSig& sig) const;
  bool Contains(const ExprSig& sig) const { return exprs_.count(sig) > 0; }

  void Put(MaterializedExpr expr);

  /// All signatures currently materialized, in deterministic order.
  std::vector<ExprSig> Signatures() const;

  size_t size() const { return exprs_.size(); }

  /// Evaluate-once UDF column cache scoped to this store's expressions;
  /// persists across EXECUTE rounds so re-planned passes over the same
  /// materialized expressions hit instead of re-evaluating UDFs. Budget is
  /// snapshotted from DefaultUdfCacheBytes() at construction.
  UdfColumnCache* udf_cache() const { return udf_cache_.get(); }

  /// Replaces the per-store cache with a shared one (the server installs a
  /// cross-session cache here). Safe across queries: entries are keyed by
  /// exact Table identity, so a colliding signature from another query is
  /// detected as stale and rebuilt rather than served.
  void SetUdfCache(std::shared_ptr<UdfColumnCache> cache) {
    if (cache != nullptr) udf_cache_ = std::move(cache);
  }

 private:
  std::map<ExprSig, MaterializedExpr> exprs_;
  std::shared_ptr<UdfColumnCache> udf_cache_;
};

}  // namespace monsoon

#endif  // MONSOON_EXEC_MATERIALIZED_STORE_H_
