#include "exec/pipeline.h"

#include <algorithm>

#include "obs/metrics.h"

namespace monsoon {

Status Pipeline::Run(const Table& table, size_t begin, size_t end,
                     ExecContext* ctx) const {
  static obs::Histogram* const batch_rows_metric =
      obs::Registry::Global().GetHistogram("exec.batch_rows");
  const size_t batch_size = std::max<size_t>(1, ctx->batch_size());
  Batch batch;
  batch.table = &table;
  for (size_t b = begin; b < end; b += batch_size) {
    MONSOON_RETURN_IF_ERROR(ctx->CheckCancelled());
    batch.begin = b;
    batch.end = std::min(end, b + batch_size);
    batch.sel.Clear();
    batch.filtered = false;
    // The histogram records genuine vectorized batches; row-at-a-time
    // drives (batch_size == 1) would only log a constant while taxing the
    // legacy path with an atomic add per row.
    if (batch_size > 1) {
      batch_rows_metric->Observe(static_cast<double>(batch.end - batch.begin));
    }
    for (PipelineOperator* op : ops_) {
      MONSOON_RETURN_IF_ERROR(op->ProcessBatch(&batch, ctx));
      if (batch.ActiveRows() == 0) break;
    }
  }
  return Status::OK();
}

}  // namespace monsoon
