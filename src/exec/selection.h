#ifndef MONSOON_EXEC_SELECTION_H_
#define MONSOON_EXEC_SELECTION_H_

#include <cstdint>
#include <vector>

namespace monsoon {

/// Row indices of a batch that survive the filters applied so far, in
/// ascending order. Filters refine a selection instead of copying survivor
/// rows; only the terminal sink of a pipeline (gather into an output
/// Table, Σ sketch updates, join probes) touches column data, and only for
/// survivors.
///
/// Indices are absolute row ids of the batch's source table (not offsets
/// into the batch), so sinks gather straight from the source columns
/// without rebasing. 32-bit ids keep a full selection of the default
/// 1024-row batch inside one cache line pair; tables past 2^32 rows are
/// out of scope for this engine (the generators top out in the millions).
class SelectionVector {
 public:
  void Clear() { rows_.clear(); }
  void Reserve(size_t n) { rows_.reserve(n); }
  void Append(uint32_t row) { rows_.push_back(row); }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  uint32_t operator[](size_t i) const { return rows_[i]; }
  const uint32_t* data() const { return rows_.data(); }

  /// In-place refinement: a later filter reads entry i and compacts
  /// survivors to the front, then truncates to the surviving count.
  uint32_t* mutable_data() { return rows_.data(); }
  void Truncate(size_t n) { rows_.resize(n); }

 private:
  std::vector<uint32_t> rows_;
};

}  // namespace monsoon

#endif  // MONSOON_EXEC_SELECTION_H_
