#ifndef MONSOON_EXEC_EXEC_CONTEXT_H_
#define MONSOON_EXEC_EXEC_CONTEXT_H_

#include <chrono>
#include <cstdint>

#include "common/status.h"
#include "parallel/runtime.h"

namespace monsoon {

/// Per-query execution accounting and resource limits.
///
/// Two counters are kept deliberately separate:
///  * `objects_processed` follows the paper's Sec. 4.4 cost metric exactly
///    (leaf scans charge their input, joins charge their output, Σ charges
///    another pass over its input). This is the number reported as "cost".
///  * `work_units` additionally charges real work that the paper's logical
///    metric hides, chiefly nested-loop candidate pairs. Budgets/timeouts
///    trip on work_units so a cross product cannot grind forever while
///    producing few output objects.
///
/// The context also carries the query's parallel runtime (snapshotted from
/// parallel::DefaultConfig() at construction): a pool handle and morsel
/// size the executor's morsel-driven operators use. The counters above are
/// NOT thread-safe — parallel operators accumulate work in morsel-local
/// tallies and charge the context once at each merge barrier, which keeps
/// the recorded totals identical to the serial path (budget trips are
/// detected at barrier granularity instead of per row; see DESIGN.md).
class ExecContext {
 public:
  ExecContext() = default;

  /// work_budget == 0 means unlimited.
  explicit ExecContext(uint64_t work_budget) : work_budget_(work_budget) {}

  uint64_t objects_processed() const { return objects_processed_; }
  uint64_t work_units() const { return work_units_; }
  uint64_t work_budget() const { return work_budget_; }

  /// Charges `n` objects to both counters; fails with ResourceExhausted
  /// once the work budget is exceeded.
  Status Charge(uint64_t n) {
    objects_processed_ += n;
    return ChargeWork(n);
  }

  /// Charges `n` to the work counter only (e.g. nested-loop candidates).
  Status ChargeWork(uint64_t n) {
    work_units_ += n;
    if (work_budget_ != 0 && work_units_ > work_budget_) {
      return Status::ResourceExhausted("work budget exceeded");
    }
    return Status::OK();
  }

  /// UDF column cache activity attributed to this query. Executor::Execute
  /// accumulates per-run deltas of the store's cache counters here (a
  /// query may touch several stores, e.g. sampling pilot runs), so the
  /// totals survive store teardown. Purely observational — cache work is
  /// never charged to the paper's counters above.
  uint64_t udf_cache_hits() const { return udf_cache_hits_; }
  uint64_t udf_cache_misses() const { return udf_cache_misses_; }
  uint64_t udf_cache_evictions() const { return udf_cache_evictions_; }
  uint64_t udf_cache_bytes() const { return udf_cache_bytes_; }
  void AddUdfCacheDelta(uint64_t hits, uint64_t misses, uint64_t evictions,
                        uint64_t bytes_in_use) {
    udf_cache_hits_ += hits;
    udf_cache_misses_ += misses;
    udf_cache_evictions_ += evictions;
    udf_cache_bytes_ = bytes_in_use;
  }

  /// Seconds spent inside Σ statistics collection (filled by the
  /// executor); drives the Table 8 component breakdown.
  double stats_collect_seconds() const { return stats_collect_seconds_; }
  void AddStatsCollectSeconds(double s) { stats_collect_seconds_ += s; }

  /// Pool for morsel-driven operators; nullptr = run serially inline.
  parallel::ThreadPool* pool() const { return pool_; }
  size_t morsel_size() const { return morsel_size_; }

  /// Overrides the snapshotted runtime (tests pin serial/parallel modes;
  /// pool may be nullptr to force the serial path).
  void SetParallel(parallel::ThreadPool* pool, size_t morsel_size) {
    pool_ = pool;
    morsel_size_ = morsel_size == 0 ? 1 : morsel_size;
  }

  /// Work units still chargeable before the budget trips (max() when
  /// unlimited). Parallel operators bound their shared tallies with this.
  uint64_t RemainingWork() const {
    if (work_budget_ == 0) return ~uint64_t{0};
    return work_budget_ > work_units_ ? work_budget_ - work_units_ : 0;
  }

 private:
  uint64_t work_budget_ = 0;
  uint64_t objects_processed_ = 0;
  uint64_t work_units_ = 0;
  uint64_t udf_cache_hits_ = 0;
  uint64_t udf_cache_misses_ = 0;
  uint64_t udf_cache_evictions_ = 0;
  uint64_t udf_cache_bytes_ = 0;
  double stats_collect_seconds_ = 0;
  parallel::ThreadPool* pool_ = parallel::SharedPool();
  size_t morsel_size_ = parallel::DefaultConfig().morsel_size;
};

/// Monotonic wall-clock timer helper.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace monsoon

#endif  // MONSOON_EXEC_EXEC_CONTEXT_H_
