#ifndef MONSOON_EXEC_EXEC_CONTEXT_H_
#define MONSOON_EXEC_EXEC_CONTEXT_H_

#include <chrono>
#include <cstdint>

#include "common/status.h"
#include "exec/run_result.h"
#include "fault/cancellation.h"
#include "obs/metrics.h"
#include "parallel/runtime.h"
#include "shard/shard.h"

namespace monsoon {

/// Per-query execution accounting and resource limits.
///
/// Two counters are kept deliberately separate:
///  * `objects_processed` follows the paper's Sec. 4.4 cost metric exactly
///    (leaf scans charge their input, joins charge their output, Σ charges
///    another pass over its input). This is the number reported as "cost".
///  * `work_units` additionally charges real work that the paper's logical
///    metric hides, chiefly nested-loop candidate pairs. Budgets/timeouts
///    trip on work_units so a cross product cannot grind forever while
///    producing few output objects.
///
/// The context also carries the query's parallel runtime (snapshotted from
/// parallel::DefaultConfig() at construction): a pool handle and morsel
/// size the executor's morsel-driven operators use. The counters above are
/// NOT thread-safe — parallel operators accumulate work in morsel-local
/// tallies and charge the context once at each merge barrier, which keeps
/// the recorded totals identical to the serial path (budget trips are
/// detected at barrier granularity instead of per row; see DESIGN.md).
/// They are obs::LocalCounter (single-owner, plain integer adds) rather
/// than registry metrics for exactly that reason: the per-row ChargeWork
/// budget check must stay a plain add + compare.
class ExecContext {
 public:
  ExecContext() = default;

  /// work_budget == 0 means unlimited.
  explicit ExecContext(uint64_t work_budget) : work_budget_(work_budget) {}

  uint64_t objects_processed() const { return objects_processed_.Value(); }
  uint64_t work_units() const { return work_units_.Value(); }
  uint64_t work_budget() const { return work_budget_; }

  /// Charges `n` objects to both counters; fails with ResourceExhausted
  /// once the work budget is exceeded.
  Status Charge(uint64_t n) {
    objects_processed_.Add(n);
    return ChargeWork(n);
  }

  /// Charges `n` to the work counter only (e.g. nested-loop candidates).
  Status ChargeWork(uint64_t n) {
    work_units_.Add(n);
    if (work_budget_ != 0 && work_units_.Value() > work_budget_) {
      return Status::ResourceExhausted("work budget exceeded");
    }
    return Status::OK();
  }

  /// UDF column cache activity attributed to this query. Executor::Execute
  /// accumulates per-run deltas of the store's cache counters here (a
  /// query may touch several stores, e.g. sampling pilot runs), so the
  /// totals survive store teardown. Purely observational — cache work is
  /// never charged to the paper's counters above.
  uint64_t udf_cache_hits() const { return udf_cache_hits_.Value(); }
  uint64_t udf_cache_misses() const { return udf_cache_misses_.Value(); }
  uint64_t udf_cache_evictions() const { return udf_cache_evictions_.Value(); }
  uint64_t udf_cache_bytes() const { return udf_cache_bytes_.Value(); }
  void AddUdfCacheDelta(uint64_t hits, uint64_t misses, uint64_t evictions,
                        uint64_t bytes_in_use) {
    udf_cache_hits_.Add(hits);
    udf_cache_misses_.Add(misses);
    udf_cache_evictions_.Add(evictions);
    udf_cache_bytes_.Set(bytes_in_use);
  }

  /// Seconds spent inside Σ statistics collection (filled by the
  /// executor); drives the Table 8 component breakdown.
  double stats_collect_seconds() const { return stats_collect_seconds_.Value(); }
  void AddStatsCollectSeconds(double s) { stats_collect_seconds_.Add(s); }

  /// Pool for morsel-driven operators; nullptr = run serially inline.
  parallel::ThreadPool* pool() const { return pool_; }
  size_t morsel_size() const { return morsel_size_; }

  /// Overrides the snapshotted runtime (tests pin serial/parallel modes;
  /// pool may be nullptr to force the serial path).
  void SetParallel(parallel::ThreadPool* pool, size_t morsel_size) {
    pool_ = pool;
    morsel_size_ = morsel_size == 0 ? 1 : morsel_size;
  }

  /// Hash-range shards per table (see shard/shard.h). 1 = unsharded, the
  /// exact pre-shard code path. Snapshotted from the process default
  /// (MONSOON_SHARDS / --shards) at construction; tests pin shard counts
  /// with the setter.
  size_t num_shards() const { return num_shards_; }
  void SetShards(size_t num_shards) {
    num_shards_ = num_shards == 0 ? 1 : num_shards;
  }

  /// Shard-supervisor recovery accounting for this query (retried shard
  /// attempts, shards failed past the retry budget, shards recovered).
  /// Same single-owner contract as the counters above: the executor folds
  /// each pass's ShardRunStats in from the orchestrating thread only.
  uint64_t shard_retries() const { return shard_retries_.Value(); }
  uint64_t shard_failures() const { return shard_failures_.Value(); }
  uint64_t shard_recoveries() const { return shard_recoveries_.Value(); }
  void AddShardStats(const shard::ShardRunStats& stats) {
    shard_retries_.Add(stats.retries);
    shard_failures_.Add(stats.failures);
    shard_recoveries_.Add(stats.recoveries);
  }

  /// Rows per executor pipeline batch (see exec/pipeline.h). 1 = the
  /// legacy row-at-a-time strategy; snapshotted from the process default
  /// (MONSOON_BATCH_SIZE / --batch-size) at construction. Tests pin
  /// batch-on/off configurations with the setter.
  size_t batch_size() const { return batch_size_; }
  void SetBatchSize(size_t batch_size) {
    batch_size_ = batch_size == 0 ? 1 : batch_size;
  }

  /// Work units still chargeable before the budget trips (max() when
  /// unlimited). Parallel operators bound their shared tallies with this.
  uint64_t RemainingWork() const {
    if (work_budget_ == 0) return ~uint64_t{0};
    uint64_t used = work_units_.Value();
    return work_budget_ > used ? work_budget_ - used : 0;
  }

  /// Cooperative cancellation + wall-clock deadline for this query. Null
  /// by default (no deadline, never cancelled); the query driver installs
  /// a token and operators poll it at morsel boundaries. Not owned.
  fault::CancellationToken* cancel_token() const { return cancel_token_; }
  void SetCancelToken(fault::CancellationToken* token) {
    cancel_token_ = token;
  }

  /// OK while the query may keep running; Cancelled / DeadlineExceeded
  /// once the token trips. Serial operator loops call this once per
  /// morsel-sized batch of rows.
  Status CheckCancelled() {
    if (cancel_token_ == nullptr) return Status::OK();
    return cancel_token_->Check();
  }

 private:
  uint64_t work_budget_ = 0;
  obs::LocalCounter objects_processed_;
  obs::LocalCounter work_units_;
  obs::LocalCounter udf_cache_hits_;
  obs::LocalCounter udf_cache_misses_;
  obs::LocalCounter udf_cache_evictions_;
  obs::LocalCounter udf_cache_bytes_;
  obs::LocalGauge stats_collect_seconds_;
  obs::LocalCounter shard_retries_;
  obs::LocalCounter shard_failures_;
  obs::LocalCounter shard_recoveries_;
  parallel::ThreadPool* pool_ = parallel::SharedPool();
  size_t morsel_size_ = parallel::DefaultConfig().morsel_size;
  size_t batch_size_ = parallel::DefaultConfig().batch_size;
  size_t num_shards_ = static_cast<size_t>(shard::DefaultShardCount());
  fault::CancellationToken* cancel_token_ = nullptr;
};

/// Copies the context's accounting counters into a RunResult. Every
/// strategy (Monsoon and the baselines) snapshots the same five fields at
/// the same points — success and budget-exhaustion exits — so the copy
/// lives here instead of being repeated at each site.
inline void CaptureAccounting(const ExecContext& ctx, RunResult* result) {
  result->objects_processed = ctx.objects_processed();
  result->work_units = ctx.work_units();
  result->udf_cache_hits = ctx.udf_cache_hits();
  result->udf_cache_misses = ctx.udf_cache_misses();
  result->udf_cache_bytes = ctx.udf_cache_bytes();
  result->shard_retries = ctx.shard_retries();
  result->shard_failures = ctx.shard_failures();
  result->shard_recoveries = ctx.shard_recoveries();
}

/// Monotonic wall-clock timer helper.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace monsoon

#endif  // MONSOON_EXEC_EXEC_CONTEXT_H_
