#ifndef MONSOON_EXEC_BOUND_TERM_H_
#define MONSOON_EXEC_BOUND_TERM_H_

#include <vector>

#include "common/status.h"
#include "expr/udf.h"
#include "query/query_spec.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace monsoon {

/// A UDF term resolved against a concrete schema: function pointer plus
/// argument column indices. Binding happens once per operator, evaluation
/// once per row (or once per expression when the UDF column cache holds
/// the term's materialized output; see exec/udf_cache.h).
class BoundTerm {
 public:
  static StatusOr<BoundTerm> Bind(const UdfTerm& term, const Schema& schema,
                                  const UdfRegistry& registry);

  Value Eval(const Table& table, size_t row) const {
    return fn_->fn(RowRef(&table, row), arg_cols_);
  }

  ValueType result_type() const { return fn_->result_type; }

 private:
  const UdfFunction* fn_ = nullptr;
  std::vector<size_t> arg_cols_;
};

}  // namespace monsoon

#endif  // MONSOON_EXEC_BOUND_TERM_H_
