#ifndef MONSOON_EXEC_PIPELINE_H_
#define MONSOON_EXEC_PIPELINE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/selection.h"
#include "storage/table.h"

namespace monsoon {

/// One unit of flow through an executor pipeline: a contiguous row range
/// of a source table, plus the selection of rows still alive after the
/// filters applied so far. Until the first filter runs, `filtered` is
/// false and every row of [begin, end) is implicitly selected — filters
/// materialize the selection lazily so an unfiltered pass never builds an
/// identity vector.
struct Batch {
  const Table* table = nullptr;
  size_t begin = 0;
  size_t end = 0;
  SelectionVector sel;
  bool filtered = false;

  size_t ActiveRows() const { return filtered ? sel.size() : end - begin; }
};

/// A composable executor stage. Operators either refine the batch's
/// selection (filters), consume surviving rows into operator-owned state
/// (sinks: gather into a Table, Σ sketch updates, join probes), or both.
/// The batch and legacy row execution strategies share this interface:
/// batch_size == 1 drives the same operators one row at a time, which is
/// the seed executor's behavior, so "row path" equivalence runs exercise
/// identical operator code with degenerate batches.
///
/// ProcessBatch may be called from pool workers (one pipeline per morsel);
/// an operator shared across morsels must therefore be stateless apart
/// from the Batch it is handed, while per-morsel operators (sinks) own
/// their morsel-local state outright.
class PipelineOperator {
 public:
  virtual ~PipelineOperator() = default;
  virtual const char* name() const = 0;
  virtual Status ProcessBatch(Batch* batch, ExecContext* ctx) = 0;
};

/// Drives rows of a table through an operator chain in ctx->batch_size()
/// chunks. Cancellation is polled once per batch (morsel boundaries are
/// always batch boundaries: the executor runs one pipeline per morsel, so
/// a morsel's final short batch ends exactly at the morsel edge). When a
/// filter leaves a batch empty, the remaining operators are skipped — by
/// then every per-row obligation (fault points) has already fired.
class Pipeline {
 public:
  Pipeline() = default;

  /// Operators run in insertion order; not owned.
  Pipeline& Add(PipelineOperator* op) {
    ops_.push_back(op);
    return *this;
  }

  Status Run(const Table& table, size_t begin, size_t end,
             ExecContext* ctx) const;

 private:
  std::vector<PipelineOperator*> ops_;
};

}  // namespace monsoon

#endif  // MONSOON_EXEC_PIPELINE_H_
