#ifndef MONSOON_EXEC_BATCH_H_
#define MONSOON_EXEC_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/bound_term.h"
#include "exec/udf_cache.h"
#include "storage/table.h"
#include "storage/value.h"

namespace monsoon {

/// A typed flat column of UDF results, batch-local or whole-side: the same
/// representation as the evaluate-once CachedUdfColumn (int64/double flat,
/// strings alongside a precomputed Value::Hash()-identical hash column),
/// but owned by one operator instead of the cache. The batch executor uses
/// it to unbox uncached term results once per fill instead of boxing a
/// Value per row per use (join probe keys, sort-merge keys).
class FlatColumn {
 public:
  /// Resets to `n` uninitialized slots of `type`. Slots are written by
  /// Fill; strings are default-constructed so partial fills stay safe.
  void Resize(ValueType type, size_t n);

  /// Evaluates `bound` over rows [row_begin, row_end) of `table`, writing
  /// results to slots [out_begin, out_begin + (row_end - row_begin)).
  /// Disjoint ranges may be filled from different morsels concurrently.
  /// Errors if a produced value disagrees with the column's type — the
  /// same contract as the UDF cache fill (a UDF that violates its declared
  /// result type is a hard error on every vectorized path).
  Status Fill(const BoundTerm& bound, const Table& table, size_t row_begin,
              size_t row_end, size_t out_begin);

  ValueType type() const { return type_; }
  size_t size() const { return size_; }

  int64_t Int64At(size_t i) const { return int64s_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }

  const int64_t* Int64Data() const { return int64s_.data(); }
  const double* DoubleData() const { return doubles_.data(); }
  const std::string* StringData() const { return strings_.data(); }
  const uint64_t* HashData() const { return hashes_.data(); }

 private:
  ValueType type_ = ValueType::kInt64;
  size_t size_ = 0;
  std::vector<int64_t> int64s_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint64_t> hashes_;  // string columns only
};

/// Uniform read-only view over either flat representation (a cache-pinned
/// CachedUdfColumn or an operator-owned FlatColumn), so join compare /
/// hash loops are written once. Plain pointers: the viewed column must
/// outlive the view (the executor pins cached columns for the operator's
/// duration and owns its FlatColumns directly).
struct FlatView {
  ValueType type = ValueType::kInt64;
  const int64_t* i64 = nullptr;
  const double* dbl = nullptr;
  const std::string* str = nullptr;
  const uint64_t* str_hash = nullptr;  // precomputed string hashes

  static FlatView Of(const CachedUdfColumn& col);
  static FlatView Of(const FlatColumn& col);

  /// Value::Hash() of entry i without boxing.
  uint64_t HashAt(size_t i) const {
    switch (type) {
      case ValueType::kInt64:
        return HashInt64Value(i64[i]);
      case ValueType::kDouble:
        return HashDoubleValue(dbl[i]);
      case ValueType::kString:
        return str_hash[i];
    }
    return 0;
  }

  /// a(ai) == b(bi), matching Value::operator== (false across types;
  /// string compares check the hash columns first).
  static bool Equal(const FlatView& a, size_t ai, const FlatView& b, size_t bi) {
    if (a.type != b.type) return false;
    switch (a.type) {
      case ValueType::kInt64:
        return a.i64[ai] == b.i64[bi];
      case ValueType::kDouble:
        return a.dbl[ai] == b.dbl[bi];
      case ValueType::kString:
        return a.str_hash[ai] == b.str_hash[bi] && a.str[ai] == b.str[bi];
    }
    return false;
  }

  /// Three-way compare matching Value::operator< exactly: values of
  /// different types order by type index (the std::variant rule), doubles
  /// compare by value (so -0.0 ties 0.0 and NaN is unordered: Compare
  /// returns 0 for NaN-vs-anything ties exactly where the variant's
  /// operator< reports neither side smaller).
  static int Compare(const FlatView& a, size_t ai, const FlatView& b, size_t bi) {
    if (a.type != b.type) {
      return static_cast<int>(a.type) < static_cast<int>(b.type) ? -1 : 1;
    }
    switch (a.type) {
      case ValueType::kInt64:
        if (a.i64[ai] < b.i64[bi]) return -1;
        if (b.i64[bi] < a.i64[ai]) return 1;
        return 0;
      case ValueType::kDouble:
        if (a.dbl[ai] < b.dbl[bi]) return -1;
        if (b.dbl[bi] < a.dbl[ai]) return 1;
        return 0;
      case ValueType::kString:
        if (a.str[ai] < b.str[bi]) return -1;
        if (b.str[bi] < a.str[ai]) return 1;
        return 0;
    }
    return 0;
  }
};

}  // namespace monsoon

#endif  // MONSOON_EXEC_BATCH_H_
