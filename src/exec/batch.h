#ifndef MONSOON_EXEC_BATCH_H_
#define MONSOON_EXEC_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/bound_term.h"
#include "exec/flat_compare.h"
#include "exec/udf_cache.h"
#include "storage/table.h"
#include "storage/value.h"

namespace monsoon {

/// A typed flat column of UDF results, batch-local or whole-side: the same
/// representation as the evaluate-once CachedUdfColumn (int64/double flat,
/// strings alongside a precomputed Value::Hash()-identical hash column),
/// but owned by one operator instead of the cache. The batch executor uses
/// it to unbox uncached term results once per fill instead of boxing a
/// Value per row per use (join probe keys, sort-merge keys).
class FlatColumn {
 public:
  /// Resets to `n` uninitialized slots of `type`. Slots are written by
  /// Fill; strings are default-constructed so partial fills stay safe.
  void Resize(ValueType type, size_t n);

  /// Evaluates `bound` over rows [row_begin, row_end) of `table`, writing
  /// results to slots [out_begin, out_begin + (row_end - row_begin)).
  /// Disjoint ranges may be filled from different morsels concurrently.
  /// Errors if a produced value disagrees with the column's type — the
  /// same contract as the UDF cache fill (a UDF that violates its declared
  /// result type is a hard error on every vectorized path).
  Status Fill(const BoundTerm& bound, const Table& table, size_t row_begin,
              size_t row_end, size_t out_begin);

  ValueType type() const { return type_; }
  size_t size() const { return size_; }

  int64_t Int64At(size_t i) const { return int64s_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }

  const int64_t* Int64Data() const { return int64s_.data(); }
  const double* DoubleData() const { return doubles_.data(); }
  const std::string* StringData() const { return strings_.data(); }
  const uint64_t* HashData() const { return hashes_.data(); }

 private:
  ValueType type_ = ValueType::kInt64;
  size_t size_ = 0;
  std::vector<int64_t> int64s_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint64_t> hashes_;  // string columns only
};

// The uniform read-only view over either flat representation (FlatView:
// hash / equality / three-way compare with Value-identical semantics)
// lives in exec/flat_compare.h, shared with the UDF cache; its Of()
// constructors are defined in batch.cc.

}  // namespace monsoon

#endif  // MONSOON_EXEC_BATCH_H_
