#ifndef MONSOON_EXEC_UDF_CACHE_H_
#define MONSOON_EXEC_UDF_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "exec/bound_term.h"
#include "exec/flat_compare.h"
#include "fault/cancellation.h"
#include "parallel/thread_pool.h"
#include "plan/plan_node.h"
#include "storage/table.h"
#include "storage/value.h"

namespace monsoon {

/// Monotonic counters describing UdfColumnCache activity. Surfaced through
/// ExecContext / RunResult so benches can report hit rates; never part of
/// the paper's object-count accounting.
struct UdfCacheStats {
  uint64_t hits = 0;         // lookups served from a resident column
  uint64_t misses = 0;       // columns built (one UDF pass each)
  uint64_t evictions = 0;    // entries dropped (LRU budget or stale table)
  uint64_t bytes_built = 0;  // cumulative bytes of every built column
  uint64_t bytes_in_use = 0; // current resident bytes
};

/// One bound UDF term materialized over one expression: a contiguous typed
/// column (int64/double stored flat; strings stored alongside a
/// precomputed Value::Hash()-identical 64-bit hash column). Immutable once
/// built; readers on any thread may index it freely.
class CachedUdfColumn {
 public:
  ValueType type() const { return type_; }
  size_t size() const { return size_; }
  size_t ApproxBytes() const { return bytes_; }

  int64_t Int64At(size_t row) const { return int64s_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  const std::string& StringAt(size_t row) const { return strings_[row]; }

  // Raw column storage for the batch executor's FlatView (exec/batch.h):
  // tight per-type loops read these directly instead of paying a type
  // switch per row. Only the vector matching type() is populated.
  const int64_t* Int64Data() const { return int64s_.data(); }
  const double* DoubleData() const { return doubles_.data(); }
  const std::string* StringData() const { return strings_.data(); }
  const uint64_t* HashData() const { return hashes_.data(); }

  // The per-type switches (hash / box / equality) are written once on
  // FlatView (exec/flat_compare.h); these wrappers keep the column's
  // historical call sites working on a stack-built view.

  /// Value::Hash() of the row's result without boxing a Value. Strings
  /// read the precomputed hash column; numerics mix inline.
  uint64_t HashAt(size_t row) const { return View().HashAt(row); }

  /// Boxes the row's result (sort-merge key extraction only).
  Value ValueAt(size_t row) const { return View().ValueAt(row); }

  /// result(row) == v, matching Value::operator== (false across types).
  bool EqualsValue(size_t row, const Value& v) const {
    return View().EqualsValue(row, v);
  }

  /// a.result(ai) == b.result(bi). String compares check the hash columns
  /// first so mismatches never touch character data.
  static bool Equal(const CachedUdfColumn& a, size_t ai,
                    const CachedUdfColumn& b, size_t bi) {
    return FlatView::Equal(a.View(), ai, b.View(), bi);
  }

 private:
  FlatView View() const {
    FlatView view;
    view.type = type_;
    view.i64 = int64s_.data();
    view.dbl = doubles_.data();
    view.str = strings_.data();
    view.str_hash = hashes_.data();
    return view;
  }

  friend class UdfColumnCache;

  ValueType type_ = ValueType::kInt64;
  size_t size_ = 0;
  size_t bytes_ = 0;
  std::vector<int64_t> int64s_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint64_t> hashes_;  // string columns only
};

using CachedUdfColumnPtr = std::shared_ptr<const CachedUdfColumn>;

/// Evaluate-once cache of bound UDF terms, one per MaterializedStore,
/// keyed by (ExprSig, term_id). The first operator to touch a term over an
/// expression pays one UDF pass (morsel-parallel when a pool is supplied);
/// every later scan, join build/probe, or Σ pass over the same expression
/// reads the flat column instead of calling BoundTerm::Eval per row.
///
/// Residency is bounded by an LRU byte budget. A build whose column alone
/// exceeds the budget still returns the column (shared_ptr-pinned by the
/// caller) but does not retain it. byte_budget == 0 disables the cache
/// entirely: GetOrBuild returns nullptr without evaluating anything, and
/// callers fall back to per-row evaluation.
///
/// Columns are positional, so an entry remembers the exact Table it was
/// built from (weak); re-materializing the same signature in a different
/// row order (possible across EXECUTE rounds with different join orders)
/// invalidates the stale entry instead of serving wrong rows.
///
/// Invariants (pinned by tests/udf_cache_test.cc): result rows, observed
/// counts, observed distincts, work_units and objects_processed are
/// bit-identical with the cache on or off — this is a wall-clock
/// optimization, not a cost-model change.
///
/// Thread-safe: every lookup-table mutation happens under mu_ (annotated
/// with GUARDED_BY so Clang's -Wthread-safety proves it). The executor's
/// orchestration thread is still the only caller today, but a locked cache
/// keeps concurrent queries over one MaterializedStore from becoming a
/// silent data race later. The fill inside a build runs outside the pool's
/// worker lambdas' view of the cache (disjoint ranges of a private column)
/// and the built column is immutable once published.
class UdfColumnCache {
 public:
  explicit UdfColumnCache(size_t byte_budget) : byte_budget_(byte_budget) {}

  bool enabled() const {
    MutexLock lock(mu_);
    return byte_budget_ > 0;
  }
  size_t byte_budget() const {
    MutexLock lock(mu_);
    return byte_budget_;
  }

  /// Changes the budget, evicting LRU entries to fit (0 clears and
  /// disables). Tests use this to pin cache-on/off configurations.
  void set_byte_budget(size_t bytes);

  /// The cached column for `term_id` over the expression `sig`
  /// materialized as `table`, building it with `bound` on a miss (filled
  /// via pool-parallel morsels when `pool` != nullptr, polling `token`
  /// at morsel boundaries when one is supplied). Returns nullptr when the
  /// cache is disabled. Errors if the UDF's declared result type disagrees
  /// with a produced value, on an injected exec.udf_cache.fill fault, or
  /// on cancellation; a failed fill publishes nothing — the partial
  /// column is discarded and the entry stays absent.
  StatusOr<CachedUdfColumnPtr> GetOrBuild(const ExprSig& sig, int term_id,
                                          const BoundTerm& bound,
                                          const TablePtr& table,
                                          parallel::ThreadPool* pool,
                                          size_t morsel_size,
                                          fault::CancellationToken* token = nullptr);

  /// Shard-scoped variant: the column for rows [begin, end) of `table`,
  /// stored at LOCAL indexes (slot row - begin), so per-shard operators
  /// index it with their shard-relative offsets. Keyed by the shard's row
  /// range on top of (sig, term_id) — a whole-table column is simply the
  /// range [0, num_rows), so shard keys never collide with whole-column
  /// keys across shard counts. Fills serially (callers are shard bodies
  /// already running as pool tasks), polling `token` per row and firing
  /// exec.udf_cache.fill at the ABSOLUTE row coordinate, so the injected
  /// failure site is identical to the unsharded fill. A failed fill
  /// publishes nothing.
  StatusOr<CachedUdfColumnPtr> GetOrBuildShard(
      const ExprSig& sig, int term_id, const BoundTerm& bound,
      const TablePtr& table, size_t begin, size_t end,
      fault::CancellationToken* token = nullptr);

  /// Snapshot of the activity counters (by value: the counters are
  /// guarded, and a reference would escape the lock).
  UdfCacheStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }
  size_t num_entries() const {
    MutexLock lock(mu_);
    return entries_.size();
  }

 private:
  // (rels, preds, term_id, row_begin, row_end): one bound term over one
  // row range of one expression. Whole columns use [0, num_rows).
  using Key = std::tuple<uint64_t, uint64_t, int, size_t, size_t>;

  struct Entry {
    std::weak_ptr<const Table> table;  // the exact table the column indexes
    CachedUdfColumnPtr column;
    std::list<Key>::iterator lru_it;
  };

  void Evict(std::map<Key, Entry>::iterator it) REQUIRES(mu_);
  void EvictToFit(size_t incoming_bytes) REQUIRES(mu_);

  mutable Mutex mu_;
  size_t byte_budget_ GUARDED_BY(mu_);
  std::map<Key, Entry> entries_ GUARDED_BY(mu_);
  std::list<Key> lru_ GUARDED_BY(mu_);  // front = most recently used
  UdfCacheStats stats_ GUARDED_BY(mu_);
};

/// Process-wide default byte budget applied to every new
/// MaterializedStore's cache. Initialized from the MONSOON_UDF_CACHE
/// environment variable (bytes; 0 disables) on first use, defaulting to
/// 256 MiB; HarnessOptions::udf_cache_bytes installs an explicit value.
size_t DefaultUdfCacheBytes();
void SetDefaultUdfCacheBytes(size_t bytes);

}  // namespace monsoon

#endif  // MONSOON_EXEC_UDF_CACHE_H_
