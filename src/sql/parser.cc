#include "sql/parser.h"

#include <cctype>
#include <optional>

#include "common/string_util.h"
#include "expr/udf.h"

namespace monsoon {

namespace sql_internal {

StatusOr<std::vector<Token>> Lex(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t begin = i;
      while (i < sql.size() && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                                sql[i] == '_')) {
        ++i;
      }
      tokens.push_back(Token{TokenKind::kIdent,
                             std::string(sql.substr(begin, i - begin)), begin});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t begin = i;
      ++i;
      while (i < sql.size() && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                                sql[i] == '.')) {
        ++i;
      }
      tokens.push_back(Token{TokenKind::kNumber,
                             std::string(sql.substr(begin, i - begin)), begin});
      continue;
    }
    if (c == '\'') {
      size_t begin = ++i;
      while (i < sql.size() && sql[i] != '\'') ++i;
      if (i >= sql.size()) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(begin - 1));
      }
      tokens.push_back(Token{TokenKind::kString,
                             std::string(sql.substr(begin, i - begin)), begin - 1});
      ++i;
      continue;
    }
    if (c == '<' && i + 1 < sql.size() && sql[i + 1] == '>') {
      tokens.push_back(Token{TokenKind::kSymbol, "<>", i});
      i += 2;
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == '.' || c == '*' || c == '=') {
      tokens.push_back(Token{TokenKind::kSymbol, std::string(1, c), i});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" + std::string(1, c) +
                                   "' at offset " + std::to_string(i));
  }
  tokens.push_back(Token{TokenKind::kEnd, "", sql.size()});
  return tokens;
}

}  // namespace sql_internal

namespace {

using sql_internal::Lex;
using sql_internal::Token;
using sql_internal::TokenKind;

// Recursive-descent parser state.
class ParserImpl {
 public:
  ParserImpl(const Catalog* catalog, std::vector<Token> tokens)
      : catalog_(catalog), tokens_(std::move(tokens)) {}

  StatusOr<QuerySpec> Run() {
    MONSOON_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    MONSOON_RETURN_IF_ERROR(ParseSelectList());
    MONSOON_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    MONSOON_RETURN_IF_ERROR(ParseFromList());
    if (AtKeyword("WHERE")) {
      Advance();
      MONSOON_RETURN_IF_ERROR(ParsePredicates());
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after query");
    }
    // The FROM list is parsed after SELECT, so select-list attribute
    // references are validated here.
    for (const SelectItem& item : select_items_) {
      if (!item.attribute.empty()) {
        size_t dot = item.attribute.find('.');
        MONSOON_RETURN_IF_ERROR(
            AttrType(item.attribute.substr(0, dot), item.attribute.substr(dot + 1))
                .status());
      }
    }
    query_.set_select_items(std::move(select_items_));
    MONSOON_RETURN_IF_ERROR(query_.Validate());
    return std::move(query_);
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool AtKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kIdent && EqualsIgnoreCase(Peek().text, kw);
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " (at offset " +
                                   std::to_string(Peek().position) + ")");
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AtKeyword(kw)) return Error("expected " + std::string(kw));
    Advance();
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (Peek().kind != TokenKind::kSymbol || Peek().text != sym) {
      return Error("expected '" + std::string(sym) + "'");
    }
    Advance();
    return Status::OK();
  }
  bool AtSymbol(std::string_view sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }

  // SELECT list: '*', qualified attributes, or aggregates
  // (COUNT(*|attr), SUM/MIN/MAX/AVG(attr)).
  Status ParseSelectList() {
    for (;;) {
      if (AtSymbol("*")) {
        Advance();
        select_items_.push_back(SelectItem::Star());
      } else {
        if (Peek().kind != TokenKind::kIdent) return Error("expected select item");
        std::string first = Peek().text;
        SelectItem::Kind agg = SelectItem::Kind::kAttribute;
        if (EqualsIgnoreCase(first, "COUNT")) agg = SelectItem::Kind::kCount;
        if (EqualsIgnoreCase(first, "SUM")) agg = SelectItem::Kind::kSum;
        if (EqualsIgnoreCase(first, "MIN")) agg = SelectItem::Kind::kMin;
        if (EqualsIgnoreCase(first, "MAX")) agg = SelectItem::Kind::kMax;
        if (EqualsIgnoreCase(first, "AVG")) agg = SelectItem::Kind::kAvg;
        if (agg != SelectItem::Kind::kAttribute && Peek(1).kind == TokenKind::kSymbol &&
            Peek(1).text == "(") {
          Advance();  // aggregate name
          Advance();  // '('
          std::string attr;
          if (AtSymbol("*")) {
            if (agg != SelectItem::Kind::kCount) {
              return Error("only COUNT accepts '*'");
            }
            Advance();
          } else {
            MONSOON_ASSIGN_OR_RETURN(attr, ParseQualifiedAttr());
          }
          MONSOON_RETURN_IF_ERROR(ExpectSymbol(")"));
          select_items_.push_back(SelectItem::Aggregate(agg, std::move(attr)));
        } else {
          MONSOON_ASSIGN_OR_RETURN(std::string attr, ParseQualifiedAttr());
          select_items_.push_back(SelectItem::Attribute(std::move(attr)));
        }
      }
      if (!AtSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseFromList() {
    for (;;) {
      if (Peek().kind != TokenKind::kIdent) return Error("expected table name");
      std::string table = Peek().text;
      Advance();
      std::string alias = table;
      if (Peek().kind == TokenKind::kIdent && !AtKeyword("WHERE")) {
        alias = Peek().text;
        Advance();
      }
      if (!catalog_->HasTable(table)) {
        return Status::NotFound("unknown table '" + table + "'");
      }
      MONSOON_ASSIGN_OR_RETURN(int idx, query_.AddRelation(alias, table));
      (void)idx;
      if (!AtSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParsePredicates() {
    for (;;) {
      MONSOON_RETURN_IF_ERROR(ParsePredicate());
      if (!AtKeyword("AND")) break;
      Advance();
    }
    return Status::OK();
  }

  // A parsed comparison operand: a UDF term or a literal.
  struct Operand {
    std::optional<UdfTerm> term;
    std::optional<Value> literal;
  };

  Status ParsePredicate() {
    MONSOON_ASSIGN_OR_RETURN(Operand left, ParseOperand());
    bool equality;
    if (AtSymbol("=")) {
      equality = true;
    } else if (AtSymbol("<>")) {
      equality = false;
    } else {
      return Error("expected '=' or '<>'");
    }
    Advance();
    MONSOON_ASSIGN_OR_RETURN(Operand right, ParseOperand());

    if (left.term.has_value() && right.term.has_value()) {
      return query_.AddJoinPredicate(std::move(*left.term), std::move(*right.term),
                                     equality);
    }
    if (left.term.has_value() && right.literal.has_value()) {
      if (!equality) return Error("'<>' against a constant is not supported");
      return query_.AddSelectionPredicate(std::move(*left.term),
                                          std::move(*right.literal));
    }
    if (right.term.has_value() && left.literal.has_value()) {
      if (!equality) return Error("'<>' against a constant is not supported");
      return query_.AddSelectionPredicate(std::move(*right.term),
                                          std::move(*left.literal));
    }
    return Error("a predicate must reference at least one attribute");
  }

  StatusOr<Operand> ParseOperand() {
    Operand operand;
    if (Peek().kind == TokenKind::kNumber) {
      std::string text = Peek().text;
      Advance();
      if (text.find('.') != std::string::npos) {
        operand.literal = Value(std::stod(text));
      } else {
        operand.literal = Value(static_cast<int64_t>(std::stoll(text)));
      }
      return operand;
    }
    if (Peek().kind == TokenKind::kString) {
      operand.literal = Value(Peek().text);
      Advance();
      return operand;
    }
    if (Peek().kind != TokenKind::kIdent) return Error("expected term");

    std::string first = Peek().text;
    Advance();
    if (AtSymbol("(")) {
      // UDF application.
      Advance();
      std::vector<std::string> args;
      for (;;) {
        MONSOON_ASSIGN_OR_RETURN(std::string attr, ParseQualifiedAttr());
        args.push_back(std::move(attr));
        if (AtSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      MONSOON_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (!UdfRegistry::Global().Contains(first)) {
        return Status::NotFound("unknown UDF '" + first + "'");
      }
      MONSOON_ASSIGN_OR_RETURN(UdfTerm term,
                               query_.MakeTerm(std::move(first), std::move(args)));
      operand.term = std::move(term);
      return operand;
    }
    // Bare qualified attribute: alias.column, wrapped in identity.
    MONSOON_RETURN_IF_ERROR(ExpectSymbol("."));
    if (Peek().kind != TokenKind::kIdent) return Error("expected column name");
    std::string column = Peek().text;
    Advance();
    std::string attr = first + "." + column;
    MONSOON_ASSIGN_OR_RETURN(ValueType type, AttrType(first, column));
    std::string fn = (type == ValueType::kString) ? "identity_str" : "identity";
    MONSOON_ASSIGN_OR_RETURN(UdfTerm term, query_.MakeTerm(fn, {attr}));
    operand.term = std::move(term);
    return operand;
  }

  StatusOr<std::string> ParseQualifiedAttr() {
    if (Peek().kind != TokenKind::kIdent) return Error("expected alias.column");
    std::string alias = Peek().text;
    Advance();
    MONSOON_RETURN_IF_ERROR(ExpectSymbol("."));
    if (Peek().kind != TokenKind::kIdent) return Error("expected column name");
    std::string column = Peek().text;
    Advance();
    return alias + "." + column;
  }

  StatusOr<ValueType> AttrType(const std::string& alias, const std::string& column) {
    MONSOON_ASSIGN_OR_RETURN(int rel, query_.RelationIndex(alias));
    MONSOON_ASSIGN_OR_RETURN(TablePtr table,
                             catalog_->GetTable(query_.relation(rel).table_name));
    MONSOON_ASSIGN_OR_RETURN(size_t col, table->schema().ColumnIndex(column));
    return table->schema().column(col).type;
  }

  const Catalog* catalog_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  QuerySpec query_;
  std::vector<SelectItem> select_items_;
};

}  // namespace

StatusOr<QuerySpec> SqlParser::Parse(std::string_view sql) const {
  MONSOON_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  ParserImpl parser(catalog_, std::move(tokens));
  return parser.Run();
}

}  // namespace monsoon
