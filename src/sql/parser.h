#ifndef MONSOON_SQL_PARSER_H_
#define MONSOON_SQL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "query/query_spec.h"

namespace monsoon {

/// Parses the paper's restricted SQL dialect (Sec. 3.1) into a QuerySpec:
///
///   SELECT select_list
///   FROM   table [alias] (',' table [alias])*
///   WHERE  pred (AND pred)*
///
///   pred := term ('=' | '<>') term
///   term := func '(' attr (',' attr)* ')' | alias.column | literal
///
/// A bare attribute reference is wrapped in the `identity` /
/// `identity_str` UDF according to its column type (the paper assumes
/// w.l.o.g. that all referenced values come through UDFs). `term = literal`
/// becomes a selection predicate; `term (=|<>) term` a join predicate.
/// The SELECT list is validated but not otherwise used — this repo
/// reproduces join-order optimization, so query results are the joined
/// relation.
///
/// The catalog is consulted for table existence and column types.
class SqlParser {
 public:
  explicit SqlParser(const Catalog* catalog) : catalog_(catalog) {}

  StatusOr<QuerySpec> Parse(std::string_view sql) const;

 private:
  const Catalog* catalog_;
};

namespace sql_internal {

/// Token kinds for the lexer (exposed for tests).
enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // one of ( ) , . * = and the two-char <>
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t position;
};

/// Tokenizes SQL text; fails on unterminated strings or stray characters.
StatusOr<std::vector<Token>> Lex(std::string_view sql);

}  // namespace sql_internal

}  // namespace monsoon

#endif  // MONSOON_SQL_PARSER_H_
