#include "plan/logical_ops.h"

namespace monsoon {

PlanNode::Ptr MakeLeaf(const QuerySpec& query, int rel) {
  return PlanNode::Leaf(ExprSig::Of(RelSet::Single(rel), 0),
                        query.SelectionPredicatesOn(rel));
}

std::vector<int> ApplicableJoinPreds(const QuerySpec& query, const ExprSig& left,
                                     const ExprSig& right) {
  std::vector<int> out;
  RelSet lrels(left.rels);
  RelSet rrels(right.rels);
  RelSet union_rels = lrels.Union(rrels);
  uint64_t applied = left.preds | right.preds;
  for (const Predicate& pred : query.predicates()) {
    if ((applied >> pred.pred_id) & 1) continue;
    RelSet prels = pred.rels();
    if (!union_rels.ContainsAll(prels)) continue;
    if (lrels.ContainsAll(prels) || rrels.ContainsAll(prels)) continue;
    out.push_back(pred.pred_id);
  }
  return out;
}

bool AreConnected(const QuerySpec& query, const ExprSig& left, const ExprSig& right) {
  return !ApplicableJoinPreds(query, left, right).empty();
}

bool CrossProductUnavoidable(const QuerySpec& query, RelSet a, RelSet b) {
  // Union-find over relations through all predicates.
  int n = query.num_relations();
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Predicate& pred : query.predicates()) {
    auto indices = pred.rels().Indices();
    for (size_t i = 1; i < indices.size(); ++i) {
      int ra = find(indices[0]);
      int rb = find(indices[i]);
      if (ra != rb) parent[ra] = rb;
    }
  }
  // If any relation of `a` shares a component with any relation of `b`,
  // a predicate path exists and the cross product is avoidable.
  for (int ia : a.Indices()) {
    for (int ib : b.Indices()) {
      if (find(ia) == find(ib)) return false;
    }
  }
  return true;
}

}  // namespace monsoon
