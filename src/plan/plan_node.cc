#include "plan/plan_node.h"

#include <sstream>

namespace monsoon {

std::string ExprSig::ToString() const {
  std::ostringstream out;
  out << "[rels=" << RelSet(rels).ToString() << " preds=0x" << std::hex << preds << "]";
  return out.str();
}

PlanNode::Ptr PlanNode::Leaf(ExprSig source, std::vector<int> selection_preds) {
  auto node = std::shared_ptr<PlanNode>(new PlanNode());  // NOLINT(monsoon-raw-new): private ctor
  node->kind_ = Kind::kLeaf;
  node->source_ = source;
  node->pred_ids_ = std::move(selection_preds);
  node->output_sig_ = ExprSig{source.rels, source.preds | PredMask(node->pred_ids_)};
  return node;
}

PlanNode::Ptr PlanNode::Join(Ptr left, Ptr right, std::vector<int> pred_ids) {
  auto node = std::shared_ptr<PlanNode>(new PlanNode());  // NOLINT(monsoon-raw-new): private ctor
  node->kind_ = Kind::kJoin;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->pred_ids_ = std::move(pred_ids);
  node->output_sig_ =
      ExprSig{node->left_->output_sig().rels | node->right_->output_sig().rels,
              node->left_->output_sig().preds | node->right_->output_sig().preds |
                  PredMask(node->pred_ids_)};
  return node;
}

PlanNode::Ptr PlanNode::StatsCollect(Ptr child) {
  auto node = std::shared_ptr<PlanNode>(new PlanNode());  // NOLINT(monsoon-raw-new): private ctor
  node->kind_ = Kind::kStatsCollect;
  node->left_ = std::move(child);
  node->output_sig_ = node->left_->output_sig();
  return node;
}

bool PlanNode::HasStatsCollect() const {
  if (kind_ == Kind::kStatsCollect) return true;
  if (left_ && left_->HasStatsCollect()) return true;
  if (right_ && right_->HasStatsCollect()) return true;
  return false;
}

std::string PlanNode::ToString(const QuerySpec& query) const {
  switch (kind_) {
    case Kind::kLeaf: {
      std::string out;
      RelSet rels(source_.rels);
      auto indices = rels.Indices();
      if (indices.size() == 1) {
        out = query.relation(indices[0]).alias;
      } else {
        out = "expr" + rels.ToString();
      }
      if (!pred_ids_.empty()) out = "σ(" + out + ")";
      return out;
    }
    case Kind::kJoin: {
      std::string op = " ⋈ ";
      // A join with no equi predicate is a cross product / filter.
      bool has_equi = false;
      for (int id : pred_ids_) {
        if (query.predicate(id).IsEquiJoin()) has_equi = true;
      }
      if (!has_equi) op = " × ";
      return "(" + left_->ToString(query) + op + right_->ToString(query) + ")";
    }
    case Kind::kStatsCollect:
      return "Σ(" + left_->ToString(query) + ")";
  }
  return "?";
}

}  // namespace monsoon
