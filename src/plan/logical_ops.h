#ifndef MONSOON_PLAN_LOGICAL_OPS_H_
#define MONSOON_PLAN_LOGICAL_OPS_H_

#include <vector>

#include "plan/plan_node.h"
#include "query/query_spec.h"

namespace monsoon {

/// Builds the leaf plan for relation `rel`: a scan of the base table with
/// every selection predicate on that relation applied inline (selections
/// are always pushed to leaves in this repo; the paper restricts its MDP
/// to the join-ordering problem).
PlanNode::Ptr MakeLeaf(const QuerySpec& query, int rel);

/// Join predicates (by id) that become applicable when an expression with
/// signature `left` is joined with one with signature `right`: predicates
/// not yet applied on either side whose relations are covered by the
/// union but by neither input alone.
std::vector<int> ApplicableJoinPreds(const QuerySpec& query, const ExprSig& left,
                                     const ExprSig& right);

/// True if at least one applicable predicate connects the two inputs
/// (joining them is not a bare cross product).
bool AreConnected(const QuerySpec& query, const ExprSig& left, const ExprSig& right);

/// True if the relations of `a` and `b` lie in different connected
/// components of the query's predicate graph — i.e. a cross product
/// between them is unavoidable at some point.
bool CrossProductUnavoidable(const QuerySpec& query, RelSet a, RelSet b);

}  // namespace monsoon

#endif  // MONSOON_PLAN_LOGICAL_OPS_H_
