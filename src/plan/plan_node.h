#ifndef MONSOON_PLAN_PLAN_NODE_H_
#define MONSOON_PLAN_PLAN_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "query/query_spec.h"
#include "query/relset.h"

namespace monsoon {

/// Canonical identity of a relational-algebra expression: the set of
/// relations it covers plus the set of predicates applied inside it.
/// Two join orders over the same relations with the same predicates
/// produce the same multiset of rows, so they share one signature — this
/// is the key under which cardinalities c(r) and distinct counts
/// d(F, r|_s) are stored.
struct ExprSig {
  uint64_t rels = 0;   // RelSet mask
  uint64_t preds = 0;  // predicate-id mask

  static ExprSig Of(RelSet r, uint64_t preds_mask) { return {r.mask(), preds_mask}; }

  /// Wildcard used as "any partner" in distinct-count keys.
  static ExprSig Any() { return {0, 0}; }

  RelSet rel_set() const { return RelSet(rels); }
  bool IsAny() const { return rels == 0 && preds == 0; }

  bool operator==(const ExprSig& other) const {
    return rels == other.rels && preds == other.preds;
  }
  bool operator!=(const ExprSig& other) const { return !(*this == other); }
  bool operator<(const ExprSig& other) const {
    return rels != other.rels ? rels < other.rels : preds < other.preds;
  }

  uint64_t Hash() const { return HashCombine(Mix64(rels), Mix64(preds)); }

  std::string ToString() const;
};

struct ExprSigHash {
  size_t operator()(const ExprSig& sig) const { return sig.Hash(); }
};

/// A node of a (logical) query plan. Trees are immutable and shared:
/// MDP states copy shared_ptrs, never nodes.
///
/// - kLeaf references an already-materialized expression (`source`) and
///   optionally applies selection predicates on top of it.
/// - kJoin combines two children, applying `pred_ids` (equi joins plus
///   residual filters).
/// - kStatsCollect is the paper's Σ operator: materialize the child, then
///   make another pass computing distinct-value counts for every UDF term
///   evaluable over it.
class PlanNode {
 public:
  enum class Kind { kLeaf, kJoin, kStatsCollect };

  using Ptr = std::shared_ptr<const PlanNode>;

  /// Leaf over materialized expression `source`, applying `selection_preds`
  /// (may be empty, in which case output == source).
  static Ptr Leaf(ExprSig source, std::vector<int> selection_preds);

  /// Join of two subplans applying `pred_ids` at this node.
  static Ptr Join(Ptr left, Ptr right, std::vector<int> pred_ids);

  /// Σ(child).
  static Ptr StatsCollect(Ptr child);

  Kind kind() const { return kind_; }
  const ExprSig& output_sig() const { return output_sig_; }
  const ExprSig& source() const { return source_; }  // kLeaf only
  const Ptr& left() const { return left_; }
  const Ptr& right() const { return right_; }
  const Ptr& child() const { return left_; }  // kStatsCollect alias
  const std::vector<int>& pred_ids() const { return pred_ids_; }

  bool HasStatsCollect() const;

  /// Renders the tree, e.g. "Σ((R ⋈ S) ⋈ T)", mapping relation indices
  /// through the query's aliases.
  std::string ToString(const QuerySpec& query) const;

 private:
  PlanNode() = default;

  Kind kind_ = Kind::kLeaf;
  ExprSig source_;             // kLeaf: the materialized input
  Ptr left_;                   // kJoin: left child; kStatsCollect: child
  Ptr right_;                  // kJoin: right child
  std::vector<int> pred_ids_;  // kLeaf: selections; kJoin: join preds + filters
  ExprSig output_sig_;
};

/// Predicate-id mask helper.
inline uint64_t PredMask(const std::vector<int>& pred_ids) {
  uint64_t mask = 0;
  for (int id : pred_ids) mask |= uint64_t{1} << id;
  return mask;
}

}  // namespace monsoon

#endif  // MONSOON_PLAN_PLAN_NODE_H_
