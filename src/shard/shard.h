#ifndef MONSOON_SHARD_SHARD_H_
#define MONSOON_SHARD_SHARD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace monsoon::parallel {
class ThreadPool;
}  // namespace monsoon::parallel

namespace monsoon::fault {
class CancellationToken;
}  // namespace monsoon::fault

namespace monsoon::shard {

/// Fault point the shard supervisor's bodies poll mid-pass; the injector
/// kills one shard's attempt by arming e.g. "shard.exec=1:transient".
inline constexpr char kShardExecPoint[] = "shard.exec";

/// Hash-range shard layout over ONE partitioned Table: shard s owns the
/// contiguous row range [offsets[s], offsets[s+1]). Keeping the shards as
/// ranges of a single table (rather than N separate Tables) means every
/// existing per-range operator — Pipeline::Run, FlatColumn::Fill,
/// CombineKeyHashes — works on a shard unchanged, and shards=1 is
/// bit-for-bit today's layout (the original table, untouched).
struct ShardMap {
  std::vector<size_t> offsets;  // num_shards() + 1 entries, monotone

  size_t num_shards() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  size_t begin(size_t s) const { return offsets[s]; }
  size_t end(size_t s) const { return offsets[s + 1]; }
  size_t rows(size_t s) const { return offsets[s + 1] - offsets[s]; }
  size_t total_rows() const { return offsets.empty() ? 0 : offsets.back(); }
};

using ShardMapPtr = std::shared_ptr<const ShardMap>;

/// One shard covering [0, rows).
ShardMapPtr TrivialMap(size_t rows);

/// `num_shards` contiguous near-equal ranges over [0, rows). Used for
/// intermediates that have no hash-range map: the per-shard accounting
/// invariant holds for ANY contiguous decomposition (every pinned counter
/// is permutation/partition-invariant), so an even split is always a
/// correct fallback.
ShardMapPtr EvenMap(size_t rows, size_t num_shards);

/// Multiply-shift range partition of a 64-bit hash into [0, num_shards).
/// Uses the high bits (the well-mixed ones for Mix64-finalized hashes).
inline size_t ShardOfHash(uint64_t hash, size_t num_shards) {
  return static_cast<size_t>(
      (static_cast<unsigned __int128>(hash) * num_shards) >> 64);
}

/// Deterministic content hash of one row: HashCombine chain of the same
/// per-type mixers Value::Hash() uses, finalized with Mix64. Row→shard
/// assignment therefore depends only on row *content*, never on position,
/// thread count, or shard count history.
uint64_t RowContentHash(const Table& table, size_t row);

/// A table physically reordered into hash-range shards plus its layout.
/// `map` is null when the table is unsharded (num_shards <= 1 pass-through).
struct PartitionResult {
  TablePtr table;
  ShardMapPtr map;
};

/// Reorders `table` into `num_shards` hash-range shards (stable within a
/// shard). num_shards <= 1 or an empty table returns the ORIGINAL table
/// pointer with a null map — shards=1 is not a copy, it is today's layout.
PartitionResult Partition(const TablePtr& table, size_t num_shards);

/// Process-wide memoized Partition keyed on (table identity, num_shards),
/// validated by weak_ptr so a recycled address never aliases a dead table.
/// Returning a STABLE partitioned-table identity for a given base table is
/// what keeps the cross-session UDF column cache hitting under sharding.
PartitionResult GetOrPartition(const TablePtr& table, size_t num_shards);

/// Process default shard count: explicit SetDefaultShardCount (the
/// --shards flag) > MONSOON_SHARDS env > 1. Values < 1 clamp to 1.
int DefaultShardCount();
void SetDefaultShardCount(int num_shards);

/// Per-run recovery accounting filled by RunSharded; the executor folds it
/// into ExecContext so RunResult (and from there .health / the slow log)
/// can tell a recovered query from a clean one.
struct ShardRunStats {
  uint64_t retries = 0;     // transient shard attempts that were retried
  uint64_t failures = 0;    // shards failed past the retry budget
  uint64_t recoveries = 0;  // shards that succeeded after >= 1 retry
};

/// Per-shard work item. Runs over the shard's row range [begin, end) and
/// must COMMIT results to caller-owned per-shard slots only on success —
/// on any non-OK return the supervisor assumes nothing was published and
/// re-executes the same shard with `attempt + 1`. Bodies poll
/// fault::FireAttempt(kShardExecPoint, shard, attempt) mid-pass so the
/// injector can kill a specific attempt of a specific shard.
using ShardBody =
    std::function<Status(size_t shard, size_t begin, size_t end, uint32_t attempt)>;

/// Shard supervisor: runs `body` once per shard of `map` as TaskGroup
/// tasks on `pool` (inline when the pool is null or has no workers).
///
/// Recovery protocol: a transient failure (Status::IsTransient) of one
/// shard is retried — only that shard — under the installed fault
/// config's deterministic bounded-retry/backoff schedule
/// (BackoffUs(seed, point_name, shard, attempt)); past the retry budget
/// the shard's error (with context naming the shard) becomes the pass
/// verdict. The supervisor deliberately does NOT cancel `token` on shard
/// failure: the query token stays live so the caller can degrade
/// gracefully (a failed Σ pass skips the relation instead of killing the
/// query). `token` is only POLLED, so an externally cancelled query stops
/// claiming shard attempts. The lowest-indexed failed shard's Status wins,
/// independent of thread interleaving.
Status RunSharded(parallel::ThreadPool* pool, fault::CancellationToken* token,
                  const ShardMap& map, const char* point_name,
                  const ShardBody& body, ShardRunStats* stats);

}  // namespace monsoon::shard

#endif  // MONSOON_SHARD_SHARD_H_
