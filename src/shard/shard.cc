#include "shard/shard.h"

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/hash.h"
#include "common/sync.h"
#include "fault/cancellation.h"
#include "fault/injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace monsoon::shard {

namespace {

/// Registry handles for the monsoon.shard.* metric family. Looked up once;
/// the registry owns the objects.
struct ShardMetrics {
  obs::Counter* exec_passes;
  obs::Counter* retries;
  obs::Counter* failures;
  obs::Counter* recoveries;
};

ShardMetrics& Metrics() {
  static ShardMetrics m = [] {
    obs::Registry& reg = obs::Registry::Global();
    ShardMetrics metrics;
    metrics.exec_passes = reg.GetCounter("monsoon.shard.exec_passes");
    metrics.retries = reg.GetCounter("monsoon.shard.retries");
    metrics.failures = reg.GetCounter("monsoon.shard.failures");
    metrics.recoveries = reg.GetCounter("monsoon.shard.recoveries");
    return metrics;
  }();
  return m;
}

std::atomic<int>& ShardCountHolder() {
  static std::atomic<int> holder = [] {
    int v = EnvInt("MONSOON_SHARDS", 1);
    return v < 1 ? 1 : v;
  }();
  return holder;
}

}  // namespace

ShardMapPtr TrivialMap(size_t rows) {
  auto map = std::make_shared<ShardMap>();
  map->offsets = {0, rows};
  return map;
}

ShardMapPtr EvenMap(size_t rows, size_t num_shards) {
  if (num_shards < 1) num_shards = 1;
  auto map = std::make_shared<ShardMap>();
  map->offsets.reserve(num_shards + 1);
  for (size_t s = 0; s <= num_shards; ++s) {
    map->offsets.push_back(rows * s / num_shards);
  }
  return map;
}

uint64_t RowContentHash(const Table& table, size_t row) {
  uint64_t h = 0;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    uint64_t cell = 0;
    switch (schema.column(c).type) {
      case ValueType::kInt64:
        cell = HashInt64Value(table.Int64At(c, row));
        break;
      case ValueType::kDouble:
        cell = HashDoubleValue(table.DoubleAt(c, row));
        break;
      case ValueType::kString:
        cell = HashString(table.StringAt(c, row));
        break;
    }
    h = HashCombine(h, cell);
  }
  // ShardOfHash consumes the HIGH bits; HashCombine leaves them weak.
  return Mix64(h);
}

PartitionResult Partition(const TablePtr& table, size_t num_shards) {
  if (table == nullptr || num_shards <= 1) {
    return {table, nullptr};
  }
  const size_t rows = table->num_rows();
  std::vector<std::vector<uint32_t>> selections(num_shards);
  for (size_t row = 0; row < rows; ++row) {
    size_t s = ShardOfHash(RowContentHash(*table, row), num_shards);
    selections[s].push_back(static_cast<uint32_t>(row));
  }
  auto out = std::make_shared<Table>(table->schema());
  out->Reserve(rows);
  auto map = std::make_shared<ShardMap>();
  map->offsets.reserve(num_shards + 1);
  map->offsets.push_back(0);
  for (size_t s = 0; s < num_shards; ++s) {
    out->AppendSelectedFrom(*table, selections[s].data(), selections[s].size());
    map->offsets.push_back(out->num_rows());
  }
  return {std::move(out), std::move(map)};
}

namespace {

struct PartitionCacheEntry {
  std::weak_ptr<const Table> source;  // identity check: address reuse guard
  PartitionResult result;
};

Mutex& PartitionCacheMutex() {
  static Mutex* mu = new Mutex;  // NOLINT(monsoon-raw-new): leaked singleton
  return *mu;
}

/// Keyed (source address, shard count); validated against `source` so a
/// recycled Table address never serves another table's layout. Entries for
/// dead tables are pruned on every access — the cache never outgrows the
/// set of live base tables.
std::map<std::pair<const Table*, size_t>, PartitionCacheEntry>&
PartitionCache() {
  static auto* cache = new std::map<  // NOLINT(monsoon-raw-new): singleton
      std::pair<const Table*, size_t>, PartitionCacheEntry>;
  return *cache;
}

}  // namespace

PartitionResult GetOrPartition(const TablePtr& table, size_t num_shards) {
  if (table == nullptr || num_shards <= 1) {
    return {table, nullptr};
  }
  MutexLock lock(PartitionCacheMutex());
  auto& cache = PartitionCache();
  for (auto it = cache.begin(); it != cache.end();) {
    if (it->second.source.expired()) {
      it = cache.erase(it);
    } else {
      ++it;
    }
  }
  std::pair<const Table*, size_t> key(table.get(), num_shards);
  auto it = cache.find(key);
  if (it != cache.end() && it->second.source.lock() == table) {
    return it->second.result;
  }
  PartitionCacheEntry entry;
  entry.source = table;
  entry.result = Partition(table, num_shards);
  cache[key] = entry;
  return entry.result;
}

int DefaultShardCount() {
  return ShardCountHolder().load(std::memory_order_relaxed);
}

void SetDefaultShardCount(int num_shards) {
  ShardCountHolder().store(num_shards < 1 ? 1 : num_shards,
                           std::memory_order_relaxed);
}

Status RunSharded(parallel::ThreadPool* pool, fault::CancellationToken* token,
                  const ShardMap& map, const char* point_name,
                  const ShardBody& body, ShardRunStats* stats) {
  const size_t n = map.num_shards();
  if (n == 0) return Status::OK();
  const fault::FaultConfig* config = fault::InstalledConfig();
  const uint32_t retry_budget = config != nullptr ? config->max_retries : 0;

  std::vector<Status> verdicts(n, Status::OK());
  std::vector<ShardRunStats> local(n);

  // One shard's failure does NOT stop its siblings: every shard runs to
  // its own verdict. A doomed pass burns the surviving shards' (retry-
  // bounded) work, but in exchange the failure surface is a pure function
  // of per-shard outcomes — the recorded failure count and the winning
  // verdict are identical at every thread count, which is what lets the
  // degraded reason deterministically name the same shard in CI runs.
  // Deliberately NO CancellationToken on the group: a shard failure must
  // not cancel the query token, or the caller could no longer distinguish
  // "this pass failed, degrade it" from "the query is dead".
  parallel::TaskGroup group(pool);
  for (size_t s = 0; s < n; ++s) {
    group.Run([&, s] {
      obs::TraceSpan span("shard", "exec");
      span.Arg("shard", s).Arg("rows", map.rows(s));
      Metrics().exec_passes->Add(1);
      for (uint32_t attempt = 0;; ++attempt) {
        if (token != nullptr) {
          Status live = token->Check();
          if (!live.ok()) {
            verdicts[s] = std::move(live);
            return;
          }
        }
        Status st = body(s, map.begin(s), map.end(s), attempt);
        if (st.ok()) {
          if (attempt > 0) {
            local[s].recoveries = 1;
            Metrics().recoveries->Add(1);
          }
          return;
        }
        if (!st.IsTransient() || attempt >= retry_budget) {
          local[s].failures = 1;
          Metrics().failures->Add(1);
          std::string frame =
              "shard " + std::to_string(s) +
              (st.IsTransient() ? " exhausted retry budget after " +
                                      std::to_string(attempt + 1) + " attempts"
                                : " failed");
          verdicts[s] = std::move(st).WithContext(std::move(frame));
          return;
        }
        local[s].retries += 1;
        Metrics().retries->Add(1);
        obs::TraceSpan retry_span("shard", "retry");
        retry_span.Arg("shard", s).Arg("attempt",
                                       static_cast<uint64_t>(attempt) + 1);
        if (config != nullptr) {
          uint64_t backoff_us =
              fault::BackoffUs(config->seed, point_name, s, attempt + 1,
                               config->backoff_base_us);
          if (backoff_us > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          }
        }
      }
    });
  }
  group.Wait();

  if (stats != nullptr) {
    for (const ShardRunStats& l : local) {
      stats->retries += l.retries;
      stats->failures += l.failures;
      stats->recoveries += l.recoveries;
    }
  }
  // Lowest-indexed failed shard wins, independent of thread interleaving.
  for (size_t s = 0; s < n; ++s) {
    if (!verdicts[s].ok()) return verdicts[s];
  }
  return token != nullptr ? token->Check() : Status::OK();
}

}  // namespace monsoon::shard
