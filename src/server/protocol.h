#ifndef MONSOON_SERVER_PROTOCOL_H_
#define MONSOON_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "exec/run_result.h"
#include "obs/metrics.h"
#include "server/admission.h"

namespace monsoon::server {

/// The wire protocol: one newline-terminated request per line, one
/// newline-terminated JSON object per response, in order. A request line
/// is either a dot-command (".ping", ".stats", ".metrics", ".health",
/// ".quit") or SQL handed to src/sql/parser verbatim. Responses always
/// carry:
///
///   id      request ordinal within the connection (1-based)
///   status  "ok" | "timeout" | "error"
///   code    StatusCode name ("OK", "Unavailable", "Cancelled", ...)
///
/// Query responses add the full accounting block (rows, objects,
/// work_units, execute_rounds, stats_collections, udf_cache hits/misses,
/// degraded, seconds breakdown) and, when tail sampling kept the query's
/// trace, its file path; failures add "error" with the status message. An
/// admission rejection is the error response with code "Unavailable" —
/// never a dropped connection. `.metrics` wraps the Prometheus text
/// exposition in the JSON "body" field (still one response line);
/// `.health` is a one-object operator summary; `.stats` carries the
/// registry delta since the connection opened.

struct Request {
  enum class Kind { kSql, kPing, kStats, kMetrics, kHealth, kQuit };
  Kind kind = Kind::kSql;
  std::string sql;
};

/// Classifies a request line. Unknown dot-commands surface as SQL (the
/// parser's error message names the offending token).
Request ParseRequestLine(const std::string& line);

/// Response for a completed (successfully or not) optimizer run.
/// `trace_path` is the query's tail-sampled trace file ("" = none).
std::string RenderRunResponse(uint64_t id, const RunResult& result,
                              const std::string& trace_path = std::string());

/// Response for a request that never reached the optimizer (parse error,
/// admission rejection, drain). A parse error still ends its tail-sampling
/// scope, so it may carry a kept `trace_path` ("" = none).
std::string RenderErrorResponse(uint64_t id, const Status& status,
                                const std::string& trace_path = std::string());

std::string RenderPong(uint64_t id);

/// Acknowledges `.quit` just before the server closes the connection.
std::string RenderBye(uint64_t id);

/// `delta` is the registry delta since the connection opened
/// (SnapshotDelta of the connection-start snapshot against now), rendered
/// in the run-report metrics layout under "metrics_delta".
std::string RenderStatsResponse(uint64_t id, const AdmissionStats& admission,
                                uint64_t sessions_total, size_t memo_entries,
                                const obs::MetricsSnapshot& delta);

/// `.metrics`: the Prometheus text exposition as the "body" string plus
/// its content type, ready for an HTTP-fronting scraper to unwrap.
std::string RenderMetricsResponse(uint64_t id, const std::string& exposition);

/// Operator-facing `.health` summary. Percentiles and rates come from the
/// telemetry window (0 / empty when the sampler is off or has not ticked).
struct HealthInfo {
  uint64_t sessions_total = 0;
  int64_t active = 0;
  int64_t queued = 0;
  uint64_t degraded_queries = 0;
  uint64_t slow_queries = 0;
  uint64_t tail_sampled = 0;
  uint64_t tail_dropped = 0;
  // Fault-layer recovery counters (process-wide totals): fault-point
  // retries/failures from the injector, and the shard supervisor's
  // retried / failed-past-budget / recovered shard counts. A fleet
  // operator reads "retries high, failures zero" as healthy recovery.
  uint64_t fault_retries = 0;
  uint64_t fault_failures = 0;
  uint64_t shard_retries = 0;
  uint64_t shard_failures = 0;
  uint64_t shard_recoveries = 0;
  bool draining = false;
  double window_seconds = 0;
  double qps = 0;
  double latency_p50_us = 0;
  double latency_p95_us = 0;
  double latency_p99_us = 0;
};

std::string RenderHealthResponse(uint64_t id, const HealthInfo& health);

}  // namespace monsoon::server

#endif  // MONSOON_SERVER_PROTOCOL_H_
