#ifndef MONSOON_SERVER_PROTOCOL_H_
#define MONSOON_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "exec/run_result.h"
#include "server/admission.h"

namespace monsoon::server {

/// The wire protocol: one newline-terminated request per line, one
/// newline-terminated JSON object per response, in order. A request line
/// is either a dot-command (".ping", ".stats", ".quit") or SQL handed to
/// src/sql/parser verbatim. Responses always carry:
///
///   id      request ordinal within the connection (1-based)
///   status  "ok" | "timeout" | "error"
///   code    StatusCode name ("OK", "Unavailable", "Cancelled", ...)
///
/// Query responses add the full accounting block (rows, objects,
/// work_units, execute_rounds, stats_collections, udf_cache hits/misses,
/// degraded, seconds breakdown); failures add "error" with the status
/// message. An admission rejection is the error response with code
/// "Unavailable" — never a dropped connection.

struct Request {
  enum class Kind { kSql, kPing, kStats, kQuit };
  Kind kind = Kind::kSql;
  std::string sql;
};

/// Classifies a request line. Unknown dot-commands surface as SQL (the
/// parser's error message names the offending token).
Request ParseRequestLine(const std::string& line);

/// Response for a completed (successfully or not) optimizer run.
std::string RenderRunResponse(uint64_t id, const RunResult& result);

/// Response for a request that never reached the optimizer (parse error,
/// admission rejection, drain).
std::string RenderErrorResponse(uint64_t id, const Status& status);

std::string RenderPong(uint64_t id);

/// Acknowledges `.quit` just before the server closes the connection.
std::string RenderBye(uint64_t id);

std::string RenderStatsResponse(uint64_t id, const AdmissionStats& admission,
                                uint64_t sessions_total, size_t memo_entries);

}  // namespace monsoon::server

#endif  // MONSOON_SERVER_PROTOCOL_H_
