#include "server/server.h"

#include <chrono>
#include <utility>
#include <vector>

#include "common/env.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/net.h"
#include "server/protocol.h"
#include "sql/parser.h"

namespace monsoon::server {

namespace {

/// Registry handles for the monsoon.server.* metric family. Looked up
/// once; the registry owns the objects.
struct ServerMetrics {
  obs::Counter* connections;
  obs::Counter* sessions;
  obs::Counter* admitted;
  obs::Counter* rejected;
  obs::Counter* cancelled;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* degraded;
  obs::Counter* slow;
  obs::Counter* tail_sampled;
  obs::Counter* tail_dropped;
  obs::Gauge* active;
  obs::Gauge* queued;
  obs::Histogram* latency_us;
};

ServerMetrics& Metrics() {
  static ServerMetrics m = [] {
    obs::Registry& reg = obs::Registry::Global();
    ServerMetrics metrics;
    metrics.connections = reg.GetCounter("monsoon.server.connections");
    metrics.sessions = reg.GetCounter("monsoon.server.sessions");
    metrics.admitted = reg.GetCounter("monsoon.server.admitted");
    metrics.rejected = reg.GetCounter("monsoon.server.rejected");
    metrics.cancelled = reg.GetCounter("monsoon.server.cancelled");
    metrics.bytes_in = reg.GetCounter("monsoon.server.bytes_in");
    metrics.bytes_out = reg.GetCounter("monsoon.server.bytes_out");
    metrics.degraded = reg.GetCounter("monsoon.server.degraded");
    metrics.slow = reg.GetCounter("monsoon.server.slow");
    metrics.tail_sampled = reg.GetCounter("monsoon.server.tail_sampled");
    metrics.tail_dropped = reg.GetCounter("monsoon.server.tail_dropped");
    metrics.active = reg.GetGauge("monsoon.server.active");
    metrics.queued = reg.GetGauge("monsoon.server.queued");
    metrics.latency_us = reg.GetHistogram("monsoon.server.latency_us");
    return metrics;
  }();
  return m;
}

}  // namespace

ServerOptions ServerOptions::FromEnv() { return FromEnv(ServerOptions()); }

ServerOptions ServerOptions::FromEnv(ServerOptions base) {
  ServerOptions defaults;
  if (base.port == defaults.port) {
    base.port = static_cast<uint16_t>(EnvUint64("MONSOON_SERVER_PORT", 0));
  }
  if (base.max_sessions == defaults.max_sessions) {
    base.max_sessions = EnvInt("MONSOON_SERVER_MAX_SESSIONS", defaults.max_sessions);
  }
  if (base.queue_depth == defaults.queue_depth) {
    base.queue_depth = EnvInt("MONSOON_SERVER_QUEUE_DEPTH", defaults.queue_depth);
  }
  if (base.telemetry_interval_ms == defaults.telemetry_interval_ms) {
    base.telemetry_interval_ms =
        EnvUint64("MONSOON_SERVER_TELEMETRY_MS", defaults.telemetry_interval_ms);
  }
  if (base.slow_log_path == defaults.slow_log_path) {
    base.slow_log_path = EnvString("MONSOON_SLOW_LOG").value_or("");
  }
  if (base.slow_query_ms == defaults.slow_query_ms) {
    base.slow_query_ms = EnvUint64("MONSOON_SLOW_MS", defaults.slow_query_ms);
  }
  return base;
}

QueryServer::QueryServer(const Catalog* catalog, ServerOptions options)
    : catalog_(catalog),
      options_(options),
      admission_(options.max_sessions, options.queue_depth),
      shared_(options.stats_memo_entries),
      // The pool's concurrency level counts the (absent) caller slot, so
      // max_sessions concurrent session tasks need max_sessions workers —
      // plus one worker the telemetry sampler task parks on, so sampling
      // never competes with a session for a slot.
      session_pool_(std::make_unique<parallel::ThreadPool>(
          (options.max_sessions < 1 ? 1 : options.max_sessions) + 1 +
          (options.telemetry_interval_ms > 0 ? 1 : 0))),
      sampler_(&telemetry_ring_) {}

QueryServer::~QueryServer() {
  Shutdown();
  if (listen_fd_ >= 0) CloseFd(listen_fd_);
}

Status QueryServer::Start() {
  if (started_.exchange(true)) {
    return Status::Internal("QueryServer::Start called twice");
  }
  if (!options_.slow_log_path.empty()) {
    slow_log_ = std::make_unique<obs::SlowQueryLog>(
        options_.slow_log_path, options_.slow_query_ms * 1000);
    MONSOON_RETURN_IF_ERROR(slow_log_->Open());
  }
  MONSOON_ASSIGN_OR_RETURN(listen_fd_, ListenOn(options_.port));
  MONSOON_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_));
  if (options_.telemetry_interval_ms > 0) {
    // Fresh sampling epoch: drop any slots recorded before this start and
    // force the sampler to re-prime, so the first window after (re)start
    // never merges stale buckets whose intervals span a stopped gap.
    telemetry_ring_.Clear();
    sampler_.Reset();
    {
      MutexLock lock(telemetry_mu_);
      telemetry_running_ = true;
    }
    session_pool_->Submit([this] { TelemetryLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::TelemetryLoop() {
  for (;;) {
    // Snapshot outside telemetry_mu_: SampleOnce takes the registry and
    // ring locks, and the tick interval should not serialize with
    // StopTelemetry's wait.
    sampler_.SampleOnce();
    MutexLock lock(telemetry_mu_);
    if (telemetry_stop_) break;
    telemetry_cv_.WaitFor(
        telemetry_mu_,
        std::chrono::milliseconds(options_.telemetry_interval_ms));
    if (telemetry_stop_) break;
  }
  MutexLock lock(telemetry_mu_);
  telemetry_running_ = false;
  telemetry_cv_.NotifyAll();
}

void QueryServer::StopTelemetry() {
  MutexLock lock(telemetry_mu_);
  telemetry_stop_ = true;
  telemetry_cv_.NotifyAll();
  while (telemetry_running_) {
    telemetry_cv_.WaitFor(telemetry_mu_, std::chrono::milliseconds(10));
  }
}

void QueryServer::AcceptLoop() {
  for (;;) {
    StatusOr<int> fd_or = AcceptConnection(listen_fd_);
    if (!fd_or.ok()) break;  // listening fd shut down: drain begins
    int fd = fd_or.value();
    if (draining_.load(std::memory_order_acquire)) {
      CloseFd(fd);
      continue;
    }
    Metrics().connections->Add(1);
    ReapFinishedConnections();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      MutexLock lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void QueryServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    MutexLock lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
    CloseFd(conn->fd);
  }
}

void QueryServer::ServeConnection(Connection* conn) {
  LineReader reader(conn->fd);
  std::string line;
  uint64_t request_id = 0;
  uint64_t bytes_seen = 0;
  // Baseline for `.stats`: the reply carries the registry delta since the
  // connection opened (monsoon-top's per-session view).
  obs::MetricsSnapshot conn_start = obs::Registry::Global().Snapshot();
  for (;;) {
    StatusOr<bool> got = reader.ReadLine(&line);
    Metrics().bytes_in->Add(reader.bytes_read() - bytes_seen);
    bytes_seen = reader.bytes_read();
    if (!got.ok() || !got.value()) break;
    ++request_id;
    Request request = ParseRequestLine(line);
    std::string response;
    bool quit = false;
    switch (request.kind) {
      case Request::Kind::kPing:
        response = RenderPong(request_id);
        break;
      case Request::Kind::kStats:
        response = RenderStatsResponse(
            request_id, admission_.stats(), Metrics().sessions->Value(),
            shared_.memo_size(),
            obs::SnapshotDelta(conn_start, obs::Registry::Global().Snapshot()));
        break;
      case Request::Kind::kMetrics:
        response = RenderMetricsNow(request_id);
        break;
      case Request::Kind::kHealth:
        response = RenderHealthNow(request_id);
        break;
      case Request::Kind::kQuit:
        response = RenderBye(request_id);
        quit = true;
        break;
      case Request::Kind::kSql:
        if (request.sql.empty()) {
          response = RenderErrorResponse(
              request_id, Status::InvalidArgument("empty request line"));
        } else {
          response = RunQueryOnPool(request.sql, request_id, conn->fd);
        }
        break;
    }
    response.push_back('\n');
    Metrics().bytes_out->Add(response.size());
    if (!WriteAll(conn->fd, response).ok()) break;
    if (quit) break;
  }
  // Half-close only: the fd is freed by whoever joins this thread (reap
  // or Shutdown), so a racing ShutdownRead can never hit a recycled fd.
  ShutdownFd(conn->fd);
  conn->finished.store(true, std::memory_order_release);
}

std::string QueryServer::RunQueryOnPool(const std::string& sql,
                                        uint64_t request_id, int fd) {
  Metrics().sessions->Add(1);
  {
    AdmissionStats pre = admission_.stats();
    Metrics().active->Set(pre.active);
    Metrics().queued->Set(pre.queued);
  }
  Status admitted = admission_.Acquire();
  if (!admitted.ok()) {
    Metrics().rejected->Add(1);
    return RenderErrorResponse(request_id, admitted);
  }
  Metrics().admitted->Add(1);
  Metrics().active->Set(admission_.stats().active);

  uint64_t session_id = next_session_id_.fetch_add(1) + 1;
  auto handle = std::make_shared<SessionHandle>();
  auto token = std::make_shared<fault::CancellationToken>();
  {
    MutexLock lock(sessions_mu_);
    active_tokens_[session_id] = token.get();
  }
  session_pool_->Submit([this, handle, token, sql, request_id] {
    std::string response = RunSession(sql, request_id, token.get());
    MutexLock lock(handle->wait_mu);
    handle->response = std::move(response);
    handle->done = true;
    handle->done_cv.NotifyAll();
  });

  // Park until the session finishes, polling the socket so a client that
  // disconnected mid-query cancels it instead of wasting the slot. The
  // socket probe runs outside the handle lock (monsoon-server rule).
  std::string response;
  bool cancelled_for_disconnect = false;
  for (;;) {
    if (!cancelled_for_disconnect && PeerClosed(fd)) {
      token->Cancel(StatusCode::kCancelled, "client disconnected");
      cancelled_sessions_.fetch_add(1, std::memory_order_relaxed);
      Metrics().cancelled->Add(1);
      cancelled_for_disconnect = true;
    }
    MutexLock lock(handle->wait_mu);
    if (handle->done) {
      response = handle->response;
      break;
    }
    handle->done_cv.WaitFor(handle->wait_mu, std::chrono::milliseconds(50));
    if (handle->done) {
      response = handle->response;
      break;
    }
  }

  {
    MutexLock lock(sessions_mu_);
    active_tokens_.erase(session_id);
  }
  admission_.Release();
  Metrics().active->Set(admission_.stats().active);
  return response;
}

std::string QueryServer::RenderMetricsNow(uint64_t request_id) const {
  obs::WindowSummary window =
      telemetry_ring_.Window(options_.telemetry_window_seconds);
  std::vector<obs::ExpositionExtra> extras = {
      {"monsoon_window_seconds", window.window_seconds},
      {"monsoon_window_qps", window.Rate("monsoon.server.sessions")},
      {"monsoon_window_latency_us_p50",
       window.Percentile("monsoon.server.latency_us", 0.50)},
      {"monsoon_window_latency_us_p95",
       window.Percentile("monsoon.server.latency_us", 0.95)},
      {"monsoon_window_latency_us_p99",
       window.Percentile("monsoon.server.latency_us", 0.99)},
  };
  return RenderMetricsResponse(
      request_id,
      obs::RenderPrometheusText(obs::Registry::Global().Snapshot(), extras));
}

std::string QueryServer::RenderHealthNow(uint64_t request_id) const {
  HealthInfo health;
  AdmissionStats admission = admission_.stats();
  health.sessions_total = Metrics().sessions->Value();
  health.active = admission.active;
  health.queued = admission.queued;
  health.degraded_queries = Metrics().degraded->Value();
  health.slow_queries = Metrics().slow->Value();
  health.tail_sampled = Metrics().tail_sampled->Value();
  health.tail_dropped = Metrics().tail_dropped->Value();
  // Recovery counters straight from the registry: the injector and the
  // shard supervisor own these, the server only surfaces them.
  obs::Registry& reg = obs::Registry::Global();
  health.fault_retries = reg.GetCounter("faults.retries")->Value();
  health.fault_failures = reg.GetCounter("faults.failures")->Value();
  health.shard_retries = reg.GetCounter("monsoon.shard.retries")->Value();
  health.shard_failures = reg.GetCounter("monsoon.shard.failures")->Value();
  health.shard_recoveries = reg.GetCounter("monsoon.shard.recoveries")->Value();
  health.draining = draining();
  obs::WindowSummary window =
      telemetry_ring_.Window(options_.telemetry_window_seconds);
  health.window_seconds = window.window_seconds;
  health.qps = window.Rate("monsoon.server.sessions");
  health.latency_p50_us = window.Percentile("monsoon.server.latency_us", 0.50);
  health.latency_p95_us = window.Percentile("monsoon.server.latency_us", 0.95);
  health.latency_p99_us = window.Percentile("monsoon.server.latency_us", 0.99);
  return RenderHealthResponse(request_id, health);
}

std::string QueryServer::RunSession(const std::string& sql,
                                    uint64_t request_id,
                                    fault::CancellationToken* token) {
  // Open the tail-sampling scope before the first span so the session
  // span itself lands in a kept trace. No-op (serial 0) when tail
  // sampling is off.
  uint64_t tail_serial = obs::BeginQueryTrace();
  obs::TraceSpan span("server", "session");
  span.Arg("request", request_id);
  std::chrono::steady_clock::time_point begin =
      std::chrono::steady_clock::now();

  auto finish_query = [&](const RunResult& result, const std::string& spec_fp,
                          uint64_t elapsed_us) {
    bool cancelled = result.status.code() == StatusCode::kCancelled;
    bool clean = result.ok() && !result.degraded;
    bool slow = clean && options_.slow_query_ms > 0 &&
                elapsed_us >= options_.slow_query_ms * 1000;
    if (result.degraded) Metrics().degraded->Add(1);
    if (slow) Metrics().slow->Add(1);

    span.End();  // buffer the session span before the tail verdict sweeps
    obs::QueryTraceVerdict verdict;
    verdict.elapsed_us = elapsed_us;
    verdict.degraded = result.degraded;
    verdict.cancelled = cancelled;
    verdict.faulted = !result.ok() && !cancelled;
    obs::QueryTraceDecision decision = obs::EndQueryTrace(tail_serial, verdict);
    if (tail_serial != 0) {
      (decision.sampled ? Metrics().tail_sampled : Metrics().tail_dropped)
          ->Add(1);
    }

    // A query that completed only by recovering (fault-point or shard
    // retries) is log-worthy even when fast and clean; precedence keeps
    // the most actionable label: cancelled > error > degraded > retried >
    // slow.
    bool retried = result.fault_retries > 0 || result.shard_retries > 0;
    if (slow_log_ != nullptr &&
        slow_log_->Eligible(elapsed_us, result.ok(), result.degraded,
                            cancelled, retried)) {
      obs::SlowLogEntry entry;
      entry.sql = sql;
      entry.fingerprint = spec_fp;
      entry.reason = cancelled ? "cancelled"
                     : !result.ok() ? "error"
                     : result.degraded ? "degraded"
                     : retried ? "retried"
                               : "slow";
      entry.status = cancelled ? "cancelled"
                     : result.ok() ? "ok"
                     : result.timed_out() ? "timeout"
                                          : "error";
      entry.elapsed_us = elapsed_us;
      entry.result_rows = result.result_rows;
      entry.objects_processed = result.objects_processed;
      entry.work_units = result.work_units;
      entry.udf_cache_hits = result.udf_cache_hits;
      entry.udf_cache_misses = result.udf_cache_misses;
      entry.degraded = result.degraded;
      entry.degraded_reasons = result.degraded_reasons;
      entry.trace_path = decision.path;
      slow_log_->Log(entry);
    }
    return decision.path;
  };

  SqlParser parser(catalog_);
  StatusOr<QuerySpec> spec_or = parser.Parse(sql);
  if (!spec_or.ok()) {
    span.Arg("status", "parse_error");
    RunResult failed;
    failed.status = spec_or.status();
    uint64_t elapsed_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - begin)
            .count());
    std::string trace_path = finish_query(failed, std::string(), elapsed_us);
    return RenderErrorResponse(request_id, spec_or.status(), trace_path);
  }
  QuerySpec spec = std::move(spec_or).value();

  MonsoonOptimizer::Options opt = options_.optimizer;
  opt.cancel_token = token;
  StatsStore warm;
  StatsStore learned;
  std::string fingerprint = spec.ToString();
  if (options_.share_state) {
    opt.udf_cache = shared_.udf_cache();
    if (shared_.LookupStats(fingerprint, &warm)) opt.warm_stats = &warm;
    opt.learned_stats_out = &learned;
  }
  MonsoonOptimizer optimizer(catalog_, opt);
  RunResult result = optimizer.Run(spec);
  if (options_.share_state && result.ok()) {
    shared_.StoreStats(fingerprint, std::move(learned));
  }

  uint64_t elapsed_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - begin)
          .count());
  Metrics().latency_us->Observe(elapsed_us);
  span.Arg("status", result.ok() ? "ok" : StatusCodeToString(result.status.code()))
      .Arg("rows", result.result_rows)
      .Arg("work_units", result.work_units);
  std::string trace_path = finish_query(result, fingerprint, elapsed_us);
  return RenderRunResponse(request_id, result, trace_path);
}

void QueryServer::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (draining_.exchange(true)) return;

  // 1. Stop accepting: wake the accept thread with a dead listen fd.
  ShutdownFd(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Reject everything queued and everything that arrives later.
  admission_.BeginDrain();

  // 3. Cancel the active sessions; they stop at the next morsel/MCTS
  //    poll and their connection threads deliver kCancelled responses.
  {
    MutexLock lock(sessions_mu_);
    for (auto& [id, token] : active_tokens_) {
      token->Cancel(StatusCode::kCancelled, "server draining");
      cancelled_sessions_.fetch_add(1, std::memory_order_relaxed);
      Metrics().cancelled->Add(1);
    }
  }

  // 4. Drain barrier: every session slot released.
  admission_.WaitIdle();

  // 5. Wake connection threads parked in ReadLine; their final responses
  //    (written before this point or racing with it) still flush because
  //    only the read side closes.
  {
    MutexLock lock(conns_mu_);
    for (auto& conn : conns_) {
      if (!conn->finished.load(std::memory_order_acquire)) {
        ShutdownRead(conn->fd);
      }
    }
  }
  std::vector<std::unique_ptr<Connection>> conns;
  {
    MutexLock lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    CloseFd(conn->fd);
  }

  // 6. Park the sampler so pool_pending() drains to zero.
  StopTelemetry();

  Metrics().active->Set(admission_.stats().active);
  Metrics().queued->Set(admission_.stats().queued);
}

}  // namespace monsoon::server
