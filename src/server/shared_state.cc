#include "server/shared_state.h"

namespace monsoon::server {

bool SharedServerState::LookupStats(const std::string& fingerprint,
                                    StatsStore* out) const {
  MutexLock lock(memo_mu_);
  auto it = memo_.find(fingerprint);
  if (it == memo_.end()) return false;
  *out = it->second;
  return true;
}

void SharedServerState::StoreStats(const std::string& fingerprint,
                                   StatsStore stats) {
  MutexLock lock(memo_mu_);
  auto it = memo_.find(fingerprint);
  if (it != memo_.end()) {
    it->second = std::move(stats);
    return;
  }
  while (memo_.size() >= max_memo_entries_ && !memo_order_.empty()) {
    memo_.erase(memo_order_.front());
    memo_order_.pop_front();
  }
  memo_.emplace(fingerprint, std::move(stats));
  memo_order_.push_back(fingerprint);
}

size_t SharedServerState::memo_size() const {
  MutexLock lock(memo_mu_);
  return memo_.size();
}

}  // namespace monsoon::server
