#ifndef MONSOON_SERVER_NET_H_
#define MONSOON_SERVER_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace monsoon::server {

/// Thin POSIX socket wrappers for the line-protocol server and client.
/// Everything is loopback-oriented (the server binds 127.0.0.1 only) and
/// blocking; cancellation happens by shutting the fd down from another
/// thread, which wakes any blocked read with EOF.
///
/// THREADING RULE (enforced by monsoon-lint's monsoon-server rule): none
/// of these calls may run while an annotated Mutex is held — socket I/O
/// blocks for arbitrarily long on the peer.

/// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and listens.
StatusOr<int> ListenOn(uint16_t port);

/// The port a listening fd actually bound (resolves port 0).
StatusOr<uint16_t> LocalPort(int listen_fd);

/// Blocks for the next connection. Unavailable once the listening fd has
/// been shut down (the accept loop's exit signal).
StatusOr<int> AcceptConnection(int listen_fd);

/// Connects to host:port. Numeric IPv4 hosts only ("127.0.0.1"); the
/// alias "localhost" is rewritten to 127.0.0.1 so shells can use either.
StatusOr<int> ConnectTo(const std::string& host, uint16_t port);

/// Writes all of `data`, retrying short writes. SIGPIPE is suppressed per
/// call (MSG_NOSIGNAL); a closed peer surfaces as Unavailable instead.
Status WriteAll(int fd, std::string_view data);

/// True when the peer has performed an orderly shutdown (a non-blocking
/// MSG_PEEK sees EOF). Pending unread data means "not closed".
bool PeerClosed(int fd);

/// Half-closes the read side: a thread blocked in a read on `fd` wakes
/// with EOF, while in-flight writes (e.g. a final response) still land.
void ShutdownRead(int fd);

/// Full shutdown: wakes readers and writers. Used on the listening fd to
/// break the accept loop.
void ShutdownFd(int fd);

void CloseFd(int fd);

/// Buffered newline-framed reader over a blocking fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads the next '\n'-terminated line into `line` (terminator
  /// stripped). Returns false on clean EOF with no buffered partial line;
  /// errors surface as a non-OK status.
  StatusOr<bool> ReadLine(std::string* line);

  /// Raw bytes consumed from the fd so far (includes terminators).
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  int fd_;
  std::string buffer_;
  uint64_t bytes_read_ = 0;
};

}  // namespace monsoon::server

#endif  // MONSOON_SERVER_NET_H_
