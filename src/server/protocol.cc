#include "server/protocol.h"

#include <sstream>

#include "obs/json.h"
#include "obs/report.h"

namespace monsoon::server {

namespace {

std::string StatusLabel(const RunResult& r) {
  if (r.ok()) return "ok";
  if (r.timed_out()) return "timeout";
  return "error";
}

void OpenResponse(obs::JsonWriter* w, uint64_t id, const std::string& status,
                  StatusCode code) {
  w->BeginObject();
  w->KV("id", id);
  w->KV("status", status);
  w->KV("code", StatusCodeToString(code));
}

}  // namespace

Request ParseRequestLine(const std::string& line) {
  Request request;
  size_t begin = line.find_first_not_of(" \t");
  size_t end = line.find_last_not_of(" \t");
  std::string trimmed = begin == std::string::npos
                            ? std::string()
                            : line.substr(begin, end - begin + 1);
  if (trimmed == ".ping") {
    request.kind = Request::Kind::kPing;
  } else if (trimmed == ".stats") {
    request.kind = Request::Kind::kStats;
  } else if (trimmed == ".metrics") {
    request.kind = Request::Kind::kMetrics;
  } else if (trimmed == ".health") {
    request.kind = Request::Kind::kHealth;
  } else if (trimmed == ".quit") {
    request.kind = Request::Kind::kQuit;
  } else {
    request.kind = Request::Kind::kSql;
    request.sql = std::move(trimmed);
  }
  return request;
}

std::string RenderRunResponse(uint64_t id, const RunResult& result,
                              const std::string& trace_path) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  OpenResponse(&w, id, StatusLabel(result), result.status.code());
  if (!result.ok()) w.KV("error", result.status.message());
  if (!trace_path.empty()) w.KV("trace", trace_path);
  w.KV("rows", result.result_rows);
  w.KV("objects", result.objects_processed);
  w.KV("work_units", result.work_units);
  w.KV("execute_rounds", result.execute_rounds);
  w.KV("stats_collections", result.stats_collections);
  w.Key("udf_cache");
  w.BeginObject();
  w.KV("hits", result.udf_cache_hits);
  w.KV("misses", result.udf_cache_misses);
  w.EndObject();
  w.KV("degraded", result.degraded);
  w.Key("seconds");
  w.BeginObject();
  w.KV("total", result.total_seconds);
  w.KV("plan", result.plan_seconds);
  w.KV("stats", result.stats_seconds);
  w.KV("exec", result.exec_seconds);
  w.EndObject();
  w.EndObject();
  return out.str();
}

std::string RenderErrorResponse(uint64_t id, const Status& status,
                                const std::string& trace_path) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  OpenResponse(&w, id, "error", status.code());
  w.KV("error", status.message());
  if (!trace_path.empty()) w.KV("trace", trace_path);
  w.EndObject();
  return out.str();
}

std::string RenderPong(uint64_t id) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  OpenResponse(&w, id, "ok", StatusCode::kOk);
  w.KV("pong", true);
  w.EndObject();
  return out.str();
}

std::string RenderBye(uint64_t id) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  OpenResponse(&w, id, "ok", StatusCode::kOk);
  w.KV("bye", true);
  w.EndObject();
  return out.str();
}

std::string RenderStatsResponse(uint64_t id, const AdmissionStats& admission,
                                uint64_t sessions_total, size_t memo_entries,
                                const obs::MetricsSnapshot& delta) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  OpenResponse(&w, id, "ok", StatusCode::kOk);
  w.KV("sessions", sessions_total);
  w.KV("admitted", admission.admitted);
  w.KV("rejected", admission.rejected);
  w.KV("active", admission.active);
  w.KV("queued", admission.queued);
  w.KV("stats_memo_entries", static_cast<uint64_t>(memo_entries));
  w.Key("metrics_delta");
  obs::WriteMetricsJson(w, delta);
  w.EndObject();
  return out.str();
}

std::string RenderMetricsResponse(uint64_t id, const std::string& exposition) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  OpenResponse(&w, id, "ok", StatusCode::kOk);
  w.KV("content_type", "text/plain; version=0.0.4");
  w.KV("body", exposition);
  w.EndObject();
  return out.str();
}

std::string RenderHealthResponse(uint64_t id, const HealthInfo& health) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  OpenResponse(&w, id, "ok", StatusCode::kOk);
  w.KV("sessions", health.sessions_total);
  w.KV("active", health.active);
  w.KV("queued", health.queued);
  w.KV("degraded_queries", health.degraded_queries);
  w.KV("slow_queries", health.slow_queries);
  w.KV("tail_sampled", health.tail_sampled);
  w.KV("tail_dropped", health.tail_dropped);
  w.KV("fault_retries", health.fault_retries);
  w.KV("fault_failures", health.fault_failures);
  w.KV("shard_retries", health.shard_retries);
  w.KV("shard_failures", health.shard_failures);
  w.KV("shard_recoveries", health.shard_recoveries);
  w.KV("draining", health.draining);
  w.Key("window");
  w.BeginObject();
  w.KV("seconds", health.window_seconds);
  w.KV("qps", health.qps);
  w.KV("latency_p50_us", health.latency_p50_us);
  w.KV("latency_p95_us", health.latency_p95_us);
  w.KV("latency_p99_us", health.latency_p99_us);
  w.EndObject();
  w.EndObject();
  return out.str();
}

}  // namespace monsoon::server
