#include "server/admission.h"

namespace monsoon::server {

Status AdmissionController::Acquire() {
  MutexLock lock(admission_mu_);
  if (draining_) {
    ++rejected_;
    return Status::Unavailable("server draining");
  }
  if (active_ < max_active_) {
    ++active_;
    ++admitted_;
    return Status::OK();
  }
  if (queued_ >= queue_depth_) {
    ++rejected_;
    return Status::Unavailable(
        "server overloaded: " + std::to_string(active_) + " active, " +
        std::to_string(queued_) + " queued (queue depth " +
        std::to_string(queue_depth_) + ")");
  }
  ++queued_;
  while (active_ >= max_active_ && !draining_) {
    slot_cv_.Wait(admission_mu_);
  }
  --queued_;
  if (draining_) {
    ++rejected_;
    idle_cv_.NotifyAll();
    return Status::Unavailable("server draining");
  }
  ++active_;
  ++admitted_;
  return Status::OK();
}

void AdmissionController::Release() {
  MutexLock lock(admission_mu_);
  --active_;
  slot_cv_.NotifyOne();
  if (active_ == 0 && queued_ == 0) idle_cv_.NotifyAll();
}

void AdmissionController::BeginDrain() {
  MutexLock lock(admission_mu_);
  draining_ = true;
  slot_cv_.NotifyAll();
  if (active_ == 0 && queued_ == 0) idle_cv_.NotifyAll();
}

void AdmissionController::WaitIdle() {
  MutexLock lock(admission_mu_);
  while (active_ > 0 || queued_ > 0) {
    idle_cv_.Wait(admission_mu_);
  }
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(admission_mu_);
  AdmissionStats s;
  s.admitted = admitted_;
  s.rejected = rejected_;
  s.active = active_;
  s.queued = queued_;
  return s;
}

}  // namespace monsoon::server
