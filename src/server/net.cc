#include "server/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace monsoon::server {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<int> ListenOn(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  return fd;
}

StatusOr<uint16_t> LocalPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

StatusOr<int> AcceptConnection(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    // EINVAL is what a shut-down listening socket reports; treat every
    // persistent failure as "stop accepting".
    return Status::Unavailable(std::string("accept: ") + std::strerror(errno));
  }
}

StatusOr<int> ConnectTo(const std::string& host, uint16_t port) {
  std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable IPv4 host '" + host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Unavailable("connect " + numeric + ":" +
                                        std::to_string(port) + ": " +
                                        std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

bool PeerClosed(int fd) {
  char probe;
  ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;                       // orderly shutdown
  if (n > 0) return false;                       // pipelined data waiting
  return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
}

void ShutdownRead(int fd) { ::shutdown(fd, SHUT_RD); }

void ShutdownFd(int fd) { ::shutdown(fd, SHUT_RDWR); }

void CloseFd(int fd) { ::close(fd); }

StatusOr<bool> LineReader::ReadLine(std::string* line) {
  for (;;) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      bytes_read_ += static_cast<uint64_t>(n);
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      if (buffer_.empty()) return false;  // clean EOF at a line boundary
      line->assign(std::move(buffer_));
      buffer_.clear();
      return true;  // final unterminated line
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
}

}  // namespace monsoon::server
