#ifndef MONSOON_SERVER_ADMISSION_H_
#define MONSOON_SERVER_ADMISSION_H_

#include <cstdint>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace monsoon::server {

/// Snapshot of the admission state machine, for .stats and metrics.
struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  int active = 0;
  int queued = 0;
};

/// Bounded admission control for query sessions. A session is in exactly
/// one of three states:
///
///   REJECTED  — the wait queue is full (or the server is draining):
///               Acquire returns kUnavailable immediately; the caller
///               turns that into a structured protocol error. Overload
///               never queues unboundedly and never blocks the client
///               forever.
///   QUEUED    — a wait-queue slot is free but all `max_active` run slots
///               are busy: Acquire blocks on the slot condvar.
///   ACTIVE    — a run slot is held; Release() frees it and wakes one
///               queued waiter.
///
/// BeginDrain() flips the controller into draining mode: every queued
/// waiter and every later Acquire gets kUnavailable, while already-active
/// sessions keep their slots until Release. WaitIdle() then blocks until
/// the last active session releases — the server's drain barrier.
class AdmissionController {
 public:
  AdmissionController(int max_active, int queue_depth)
      : max_active_(max_active < 1 ? 1 : max_active),
        queue_depth_(queue_depth < 0 ? 0 : queue_depth) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until a run slot is held (OK) or the session is rejected
  /// (kUnavailable, with a reason naming overload vs. drain).
  Status Acquire();

  /// Releases a run slot previously acquired.
  void Release();

  /// Rejects all queued and future sessions; active ones drain normally.
  void BeginDrain();

  /// Blocks until no session is active or queued. Call after BeginDrain.
  void WaitIdle();

  AdmissionStats stats() const;

 private:
  const int max_active_;
  const int queue_depth_;

  mutable Mutex admission_mu_;
  CondVar slot_cv_;
  CondVar idle_cv_;
  int active_ GUARDED_BY(admission_mu_) = 0;
  int queued_ GUARDED_BY(admission_mu_) = 0;
  uint64_t admitted_ GUARDED_BY(admission_mu_) = 0;
  uint64_t rejected_ GUARDED_BY(admission_mu_) = 0;
  bool draining_ GUARDED_BY(admission_mu_) = false;
};

}  // namespace monsoon::server

#endif  // MONSOON_SERVER_ADMISSION_H_
