#ifndef MONSOON_SERVER_SHARED_STATE_H_
#define MONSOON_SERVER_SHARED_STATE_H_

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "catalog/stats_store.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "exec/udf_cache.h"

namespace monsoon::server {

/// Cross-session state shared by every query the server runs:
///
///  - one UdfColumnCache installed into every session's MaterializedStore,
///    so a UDF column evaluated for one query is a hit for the next query
///    touching the same base table. The cache is internally synchronized
///    and validates entries against exact Table identity, so signature
///    collisions between different queries are detected as stale and
///    rebuilt — sharing is a pure performance layer, never a correctness
///    hazard.
///  - a statistics memo: the hardened StatsStore S of each successful run,
///    keyed by the query's fingerprint (QuerySpec::ToString — ExprSig
///    relation indices are query-relative, so stats are only reusable
///    between queries with identical structure). A later identical query
///    warm-starts the MDP from the memo and skips the Σ collection passes
///    it already paid for.
///
/// Locking order: memo_mu_ is a leaf lock — no other lock is acquired and
/// no blocking call is made while it is held (UdfColumnCache's internal
/// mu_ is never nested with it; see tools/lint/lock_ranks.h).
class SharedServerState {
 public:
  explicit SharedServerState(size_t max_memo_entries = 64)
      : udf_cache_(std::make_shared<UdfColumnCache>(DefaultUdfCacheBytes())),
        max_memo_entries_(max_memo_entries) {}

  SharedServerState(const SharedServerState&) = delete;
  SharedServerState& operator=(const SharedServerState&) = delete;

  const std::shared_ptr<UdfColumnCache>& udf_cache() const {
    return udf_cache_;
  }

  /// Copies the memoized stats for `fingerprint` into `*out`. False when
  /// the fingerprint has never completed.
  bool LookupStats(const std::string& fingerprint, StatsStore* out) const;

  /// Memoizes (or refreshes) the hardened stats of a finished run.
  /// Inserts evict the oldest fingerprint beyond the entry cap.
  void StoreStats(const std::string& fingerprint, StatsStore stats);

  size_t memo_size() const;

 private:
  std::shared_ptr<UdfColumnCache> udf_cache_;
  const size_t max_memo_entries_;

  mutable Mutex memo_mu_;
  std::map<std::string, StatsStore> memo_ GUARDED_BY(memo_mu_);
  std::deque<std::string> memo_order_ GUARDED_BY(memo_mu_);
};

}  // namespace monsoon::server

#endif  // MONSOON_SERVER_SHARED_STATE_H_
