#ifndef MONSOON_SERVER_SERVER_H_
#define MONSOON_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "fault/cancellation.h"
#include "monsoon/monsoon_optimizer.h"
#include "parallel/thread_pool.h"
#include "server/admission.h"
#include "server/shared_state.h"

namespace monsoon::server {

/// Server configuration. Precedence for every knob follows the repo-wide
/// rule: an explicit field set by a --flag wins, then the MONSOON_SERVER_*
/// environment variable (applied by FromEnv), then the default here.
struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back via
  /// QueryServer::port). Env: MONSOON_SERVER_PORT.
  uint16_t port = 0;
  /// Concurrent-query limit: sessions past it queue. Env:
  /// MONSOON_SERVER_MAX_SESSIONS.
  int max_sessions = 4;
  /// Bounded wait-queue depth; sessions past max_sessions + queue_depth
  /// are rejected with kUnavailable. Env: MONSOON_SERVER_QUEUE_DEPTH.
  int queue_depth = 16;
  /// Share the UDF column cache and the statistics memo across sessions.
  /// Off, every session plans and executes from scratch (the equivalence
  /// tests use this to compare against one-shot runs).
  bool share_state = true;
  /// Entry cap for the cross-query statistics memo.
  size_t stats_memo_entries = 64;
  /// Optimizer configuration applied to every session (work budget,
  /// deadline_ms, seed, MCTS options...). Per-session fields
  /// (cancel_token, udf_cache, warm_stats, learned_stats_out) are
  /// overwritten by the server for each query.
  MonsoonOptimizer::Options optimizer;

  /// `base` with port / max_sessions / queue_depth filled from the
  /// environment where the corresponding field still holds its default.
  static ServerOptions FromEnv(ServerOptions base);
  static ServerOptions FromEnv();
};

/// A long-running multi-session query server: newline-delimited SQL in,
/// one JSON response line out per request (see server/protocol.h).
///
/// Threading model: one accept thread plus one thread per connection
/// (connection threads spend their life blocked on socket I/O, which a
/// pool task must never do — src/server/ is exempted from the
/// monsoon-thread rule for exactly this). Each admitted query is submitted
/// to an internal parallel::ThreadPool as one cancellable session task;
/// the connection thread waits on the session's handle while watching the
/// socket, so a client disconnect cancels its query mid-flight.
///
/// Shutdown() (wired to SIGINT by monsoon-serve) drains gracefully: stop
/// accepting, reject queued sessions with kUnavailable, cancel active
/// session tokens, wait for them to finish writing their final (typically
/// kCancelled) responses, then join every thread. After Shutdown the
/// session pool is empty — pool_pending() == 0 — which the tests and the
/// CI stage assert to prove no task leaked.
class QueryServer {
 public:
  QueryServer(const Catalog* catalog, ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds and starts the accept thread. Fails if the port is taken.
  Status Start();

  /// The bound port (resolves an ephemeral request).
  uint16_t port() const { return port_; }

  /// Graceful drain; idempotent, callable from any thread (not from a
  /// signal handler — monsoon-serve forwards its SIGINT flag from main).
  void Shutdown();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Queued-but-unclaimed tasks in the session pool (0 after Shutdown).
  size_t pool_pending() const { return session_pool_->pending_tasks(); }

  AdmissionStats admission_stats() const { return admission_.stats(); }
  const SharedServerState& shared_state() const { return shared_; }

  /// Sessions cancelled by drain or client disconnect since Start.
  uint64_t cancelled_sessions() const {
    return cancelled_sessions_.load(std::memory_order_relaxed);
  }

 private:
  /// One in-flight query: the connection thread parks on `wait_mu` /
  /// done_cv while the pool task runs, then writes `response` to the
  /// socket. shared_ptr-owned so an abandoned wait (never happens today,
  /// but the pool task must not dangle) stays safe.
  struct SessionHandle {
    Mutex wait_mu;
    CondVar done_cv;
    bool done GUARDED_BY(wait_mu) = false;
    std::string response GUARDED_BY(wait_mu);
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Admission + pool submission + wait; returns the response line.
  std::string RunQueryOnPool(const std::string& sql, uint64_t request_id,
                             int fd);
  /// The session task body (runs on the session pool).
  std::string RunSession(const std::string& sql, uint64_t request_id,
                         fault::CancellationToken* token);
  void ReapFinishedConnections();

  const Catalog* catalog_;
  ServerOptions options_;
  AdmissionController admission_;
  SharedServerState shared_;
  std::unique_ptr<parallel::ThreadPool> session_pool_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> cancelled_sessions_{0};
  std::atomic<uint64_t> next_session_id_{0};

  Mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_ GUARDED_BY(conns_mu_);

  Mutex sessions_mu_;
  std::map<uint64_t, fault::CancellationToken*> active_tokens_
      GUARDED_BY(sessions_mu_);
};

}  // namespace monsoon::server

#endif  // MONSOON_SERVER_SERVER_H_
