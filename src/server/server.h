#ifndef MONSOON_SERVER_SERVER_H_
#define MONSOON_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "fault/cancellation.h"
#include "monsoon/monsoon_optimizer.h"
#include "obs/slowlog.h"
#include "obs/timeseries.h"
#include "parallel/thread_pool.h"
#include "server/admission.h"
#include "server/shared_state.h"

namespace monsoon::server {

/// Server configuration. Precedence for every knob follows the repo-wide
/// rule: an explicit field set by a --flag wins, then the MONSOON_SERVER_*
/// environment variable (applied by FromEnv), then the default here.
struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back via
  /// QueryServer::port). Env: MONSOON_SERVER_PORT.
  uint16_t port = 0;
  /// Concurrent-query limit: sessions past it queue. Env:
  /// MONSOON_SERVER_MAX_SESSIONS.
  int max_sessions = 4;
  /// Bounded wait-queue depth; sessions past max_sessions + queue_depth
  /// are rejected with kUnavailable. Env: MONSOON_SERVER_QUEUE_DEPTH.
  int queue_depth = 16;
  /// Share the UDF column cache and the statistics memo across sessions.
  /// Off, every session plans and executes from scratch (the equivalence
  /// tests use this to compare against one-shot runs).
  bool share_state = true;
  /// Entry cap for the cross-query statistics memo.
  size_t stats_memo_entries = 64;
  /// Optimizer configuration applied to every session (work budget,
  /// deadline_ms, seed, MCTS options...). Per-session fields
  /// (cancel_token, udf_cache, warm_stats, learned_stats_out) are
  /// overwritten by the server for each query.
  MonsoonOptimizer::Options optimizer;
  /// Telemetry sampler tick (the time-series ring behind `.metrics` /
  /// `.health` window percentiles). 0 disables the sampler — the ring
  /// stays empty and window fields read as 0. Env:
  /// MONSOON_SERVER_TELEMETRY_MS.
  uint64_t telemetry_interval_ms = 250;
  /// Trailing window `.metrics` / `.health` summarize, in seconds.
  double telemetry_window_seconds = 60;
  /// Structured slow-query log path (JSONL, obs/slowlog.h); empty
  /// disables. Env: MONSOON_SLOW_LOG.
  std::string slow_log_path;
  /// Clean queries at/over this latency are logged and counted slow; 0
  /// logs only degraded / cancelled / failed queries. Env: MONSOON_SLOW_MS.
  uint64_t slow_query_ms = 0;

  /// `base` with port / max_sessions / queue_depth / telemetry and
  /// slow-log knobs filled from the environment where the corresponding
  /// field still holds its default.
  static ServerOptions FromEnv(ServerOptions base);
  static ServerOptions FromEnv();
};

/// A long-running multi-session query server: newline-delimited SQL in,
/// one JSON response line out per request (see server/protocol.h).
///
/// Threading model: one accept thread plus one thread per connection
/// (connection threads spend their life blocked on socket I/O, which a
/// pool task must never do — src/server/ is exempted from the
/// monsoon-thread rule for exactly this). Each admitted query is submitted
/// to an internal parallel::ThreadPool as one cancellable session task;
/// the connection thread waits on the session's handle while watching the
/// socket, so a client disconnect cancels its query mid-flight.
///
/// Shutdown() (wired to SIGINT by monsoon-serve) drains gracefully: stop
/// accepting, reject queued sessions with kUnavailable, cancel active
/// session tokens, wait for them to finish writing their final (typically
/// kCancelled) responses, then join every thread. After Shutdown the
/// session pool is empty — pool_pending() == 0 — which the tests and the
/// CI stage assert to prove no task leaked.
class QueryServer {
 public:
  QueryServer(const Catalog* catalog, ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds and starts the accept thread. Fails if the port is taken.
  Status Start();

  /// The bound port (resolves an ephemeral request).
  uint16_t port() const { return port_; }

  /// Graceful drain; idempotent, callable from any thread (not from a
  /// signal handler — monsoon-serve forwards its SIGINT flag from main).
  void Shutdown();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Queued-but-unclaimed tasks in the session pool (0 after Shutdown).
  size_t pool_pending() const { return session_pool_->pending_tasks(); }

  AdmissionStats admission_stats() const { return admission_.stats(); }
  const SharedServerState& shared_state() const { return shared_; }

  /// Sessions cancelled by drain or client disconnect since Start.
  uint64_t cancelled_sessions() const {
    return cancelled_sessions_.load(std::memory_order_relaxed);
  }

  /// Merged telemetry over the trailing `seconds` (empty summary until
  /// the sampler has ticked twice). Tests compare its percentiles against
  /// the `.metrics` exposition.
  obs::WindowSummary TelemetryWindow(double seconds) const {
    return telemetry_ring_.Window(seconds);
  }

  /// Sampler ticks recorded so far (tests wait on this instead of
  /// sleeping for a fixed interval).
  uint64_t telemetry_ticks() const { return telemetry_ring_.ticks(); }

  /// The slow-query log, or nullptr when --slow-log is off.
  const obs::SlowQueryLog* slow_log() const { return slow_log_.get(); }

 private:
  /// One in-flight query: the connection thread parks on `wait_mu` /
  /// done_cv while the pool task runs, then writes `response` to the
  /// socket. shared_ptr-owned so an abandoned wait (never happens today,
  /// but the pool task must not dangle) stays safe.
  struct SessionHandle {
    Mutex wait_mu;
    CondVar done_cv;
    bool done GUARDED_BY(wait_mu) = false;
    std::string response GUARDED_BY(wait_mu);
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Admission + pool submission + wait; returns the response line.
  std::string RunQueryOnPool(const std::string& sql, uint64_t request_id,
                             int fd);
  /// The session task body (runs on the session pool).
  std::string RunSession(const std::string& sql, uint64_t request_id,
                         fault::CancellationToken* token);
  void ReapFinishedConnections();
  /// The sampler pool task: tick every telemetry_interval_ms until
  /// StopTelemetry. Runs on a dedicated extra pool worker slot.
  void TelemetryLoop();
  void StopTelemetry();
  std::string RenderMetricsNow(uint64_t request_id) const;
  std::string RenderHealthNow(uint64_t request_id) const;

  const Catalog* catalog_;
  ServerOptions options_;
  AdmissionController admission_;
  SharedServerState shared_;
  std::unique_ptr<parallel::ThreadPool> session_pool_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> cancelled_sessions_{0};
  std::atomic<uint64_t> next_session_id_{0};

  Mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_ GUARDED_BY(conns_mu_);

  Mutex sessions_mu_;
  std::map<uint64_t, fault::CancellationToken*> active_tokens_
      GUARDED_BY(sessions_mu_);

  /// Windowed telemetry: the sampler task appends registry deltas to the
  /// ring; `.metrics` / `.health` read merged windows. telemetry_mu_ is
  /// deliberately unranked — it only parks the sampler between ticks and
  /// never nests with other locks.
  obs::TimeSeriesRing telemetry_ring_;
  obs::MetricsSampler sampler_;
  Mutex telemetry_mu_;
  CondVar telemetry_cv_;
  bool telemetry_stop_ GUARDED_BY(telemetry_mu_) = false;
  bool telemetry_running_ GUARDED_BY(telemetry_mu_) = false;

  std::unique_ptr<obs::SlowQueryLog> slow_log_;
};

}  // namespace monsoon::server

#endif  // MONSOON_SERVER_SERVER_H_
