#include "expr/udf.h"

#include <algorithm>

#include "common/hash.h"
#include "common/string_util.h"

namespace monsoon {

UdfRegistry& UdfRegistry::Global() {
  static UdfRegistry* registry = [] {
    auto* r = new UdfRegistry();  // NOLINT(monsoon-raw-new): leaked singleton
    RegisterBuiltinUdfs(*r);
    return r;
  }();
  return *registry;
}

Status UdfRegistry::Register(UdfFunction fn) {
  if (fn.name.empty()) return Status::InvalidArgument("UDF name must be non-empty");
  auto [it, inserted] = fns_.emplace(fn.name, std::move(fn));
  if (!inserted) return Status::AlreadyExists("UDF '" + it->first + "' already registered");
  return Status::OK();
}

void UdfRegistry::RegisterOrReplace(UdfFunction fn) {
  fns_[fn.name] = std::move(fn);
}

StatusOr<const UdfFunction*> UdfRegistry::Lookup(const std::string& name) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) return Status::NotFound("no UDF named '" + name + "'");
  return &it->second;
}

bool UdfRegistry::Contains(const std::string& name) const {
  return fns_.count(name) > 0;
}

std::vector<std::string> UdfRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(fns_.size());
  for (const auto& [name, fn] : fns_) names.push_back(name);
  return names;
}

namespace {

// Extracts the substring between `tag="` and the following '"'.
std::string ExtractField(const std::string& text, const std::string& tag) {
  std::string marker = tag + "=\"";
  size_t pos = text.find(marker);
  if (pos == std::string::npos) return "";
  size_t begin = pos + marker.size();
  size_t end = text.find('"', begin);
  if (end == std::string::npos) return text.substr(begin);
  return text.substr(begin, end - begin);
}

// Canonical form of a comma-separated set: sorted, deduplicated.
std::string CanonicalSet(const std::string& items) {
  std::vector<std::string> parts = SplitString(items, ',');
  for (auto& p : parts) p = std::string(TrimString(p));
  std::sort(parts.begin(), parts.end());
  parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ",";
    out += parts[i];
  }
  return out;
}

}  // namespace

void RegisterBuiltinUdfs(UdfRegistry& registry) {
  registry.RegisterOrReplace(UdfFunction{
      "identity", ValueType::kInt64,
      [](const RowRef& row, const std::vector<size_t>& cols) {
        return Value(row.GetInt64(cols[0]));
      }});

  registry.RegisterOrReplace(UdfFunction{
      "identity_str", ValueType::kString,
      [](const RowRef& row, const std::vector<size_t>& cols) {
        return Value(row.GetString(cols[0]));
      }});

  for (int64_t buckets : {10, 100, 1000, 10000}) {
    registry.RegisterOrReplace(UdfFunction{
        "bucket" + std::to_string(buckets), ValueType::kInt64,
        [buckets](const RowRef& row, const std::vector<size_t>& cols) {
          uint64_t h = Mix64(static_cast<uint64_t>(row.GetInt64(cols[0])));
          return Value(static_cast<int64_t>(h % static_cast<uint64_t>(buckets)));
        }});
  }

  registry.RegisterOrReplace(UdfFunction{
      "extract_id", ValueType::kString,
      [](const RowRef& row, const std::vector<size_t>& cols) {
        return Value(ExtractField(row.GetString(cols[0]), "id"));
      }});

  registry.RegisterOrReplace(UdfFunction{
      "extract_author", ValueType::kString,
      [](const RowRef& row, const std::vector<size_t>& cols) {
        return Value(ExtractField(row.GetString(cols[0]), "author"));
      }});

  registry.RegisterOrReplace(UdfFunction{
      "extract_date", ValueType::kString,
      [](const RowRef& row, const std::vector<size_t>& cols) {
        const std::string& ts = row.GetString(cols[0]);
        return Value(ts.substr(0, std::min<size_t>(10, ts.size())));
      }});

  registry.RegisterOrReplace(UdfFunction{
      "city_from_ip", ValueType::kInt64,
      [](const RowRef& row, const std::vector<size_t>& cols) {
        // Deterministic "geo lookup": the first two octets pick the city.
        const std::string& ip = row.GetString(cols[0]);
        size_t first_dot = ip.find('.');
        size_t second_dot =
            first_dot == std::string::npos ? std::string::npos : ip.find('.', first_dot + 1);
        std::string prefix =
            second_dot == std::string::npos ? ip : ip.substr(0, second_dot);
        return Value(static_cast<int64_t>(HashString(prefix) % 4096));
      }});

  registry.RegisterOrReplace(UdfFunction{
      "canonical_set", ValueType::kString,
      [](const RowRef& row, const std::vector<size_t>& cols) {
        return Value(CanonicalSet(row.GetString(cols[0])));
      }});

  registry.RegisterOrReplace(UdfFunction{
      "pair_key", ValueType::kInt64,
      [](const RowRef& row, const std::vector<size_t>& cols) {
        uint64_t h = Mix64(static_cast<uint64_t>(row.GetInt64(cols[0])));
        h = HashCombine(h, Mix64(static_cast<uint64_t>(row.GetInt64(cols[1]))));
        return Value(static_cast<int64_t>(h & 0x7fffffffffffffffULL));
      }});

  registry.RegisterOrReplace(UdfFunction{
      "concat2", ValueType::kString,
      [](const RowRef& row, const std::vector<size_t>& cols) {
        return Value(row.GetString(cols[0]) + "|" + row.GetString(cols[1]));
      }});
}

}  // namespace monsoon
