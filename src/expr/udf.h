#ifndef MONSOON_EXPR_UDF_H_
#define MONSOON_EXPR_UDF_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "storage/value.h"

namespace monsoon {

/// A registered scalar UDF implementation. The engine treats the body as a
/// black box — exactly the "partially obscured" setting of the paper: the
/// optimizer sees only the function name and the attributes it consumes,
/// never statistics about its output.
///
/// `arg_cols` are column indices resolved against the input table's schema
/// at bind time, so per-row evaluation does no name lookups.
struct UdfFunction {
  std::string name;
  /// Output type of the function (needed to type intermediate results).
  ValueType result_type;
  std::function<Value(const RowRef& row, const std::vector<size_t>& arg_cols)> fn;
};

/// Process-wide registry of UDF implementations, keyed by name.
/// Workloads register their functions at setup; queries reference them by
/// name only.
class UdfRegistry {
 public:
  UdfRegistry() = default;

  /// The registry used by default across the code base. Built-ins
  /// (RegisterBuiltinUdfs) are installed on first access.
  static UdfRegistry& Global();

  Status Register(UdfFunction fn);

  /// Registers, replacing any existing function of the same name.
  void RegisterOrReplace(UdfFunction fn);

  StatusOr<const UdfFunction*> Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const;

  std::vector<std::string> Names() const;

 private:
  std::map<std::string, UdfFunction> fns_;
};

/// Installs the standard library of UDFs used by the examples and the UDF
/// benchmark:
///   identity     — int passthrough (obscures a key column)
///   identity_str — string passthrough
///   bucket<K>    — registered as "bucket1000" etc.: hash an int into K buckets
///   extract_field— substring between `tag="` and the next `"` (doc parsing
///                  from the paper's introduction)
///   extract_date — leading YYYY-MM-DD of a timestamp string
///   city_from_ip — deterministic city id from a dotted-quad IP string
///   canonical_set— canonical form of a comma-separated item set (so
///                  Intersection(a,b) = Union(a,b) becomes equality of
///                  canonical forms)
///   pair_key     — combines two int attributes into one key (multi-table
///                  when the attributes come from different relations)
///   concat2      — string concatenation of two attributes
///   mod_k        — arg0 % arg1 (arg1 passed as an attribute)
void RegisterBuiltinUdfs(UdfRegistry& registry);

}  // namespace monsoon

#endif  // MONSOON_EXPR_UDF_H_
