#ifndef MONSOON_WORKLOADS_IMDB_H_
#define MONSOON_WORKLOADS_IMDB_H_

#include "common/status.h"
#include "workloads/workload.h"

namespace monsoon {

/// Synthetic stand-in for the IMDB Join Order Benchmark (Leis et al.).
///
/// The real 3.9 GB IMDB dump (resampled to 20 GB in the paper) is not
/// available here; what makes IMDB valuable to the paper is that its data
/// is *correlated and heavily skewed*, which breaks the uniformity /
/// independence assumptions cardinality estimators rely on. The generator
/// reproduces exactly those properties on the JOB schema subset:
///
///  * per-movie fan-out of cast_info / movie_info / movie_keyword /
///    movie_companies follows a Zipf distribution (blockbuster effect);
///  * production year is correlated with title kind;
///  * company country and info values are skewed and correlated with the
///    movie-id ranges they attach to.
///
/// The suite is a 30-query JOB-like family over 3–8 relations with
/// selections of widely varying selectivity (the paper's 113-query suite
/// is reduced proportionally; see DESIGN.md).
struct ImdbOptions {
  double scale = 1.0;
  uint64_t seed = 113;
};

StatusOr<Workload> MakeImdbWorkload(const ImdbOptions& options);

}  // namespace monsoon

#endif  // MONSOON_WORKLOADS_IMDB_H_
