#include "workloads/tpch.h"

#include <cmath>

#include "workloads/genutil.h"

namespace monsoon {

namespace {

uint64_t Scaled(double base, double scale) {
  return static_cast<uint64_t>(std::max(1.0, base * scale));
}

Status BuildTables(const TpchOptions& options, Catalog* catalog) {
  Pcg32 rng(options.seed);
  SkewProfile skew = options.skew;
  double s = options.scale;

  const uint64_t n_region = 5;
  const uint64_t n_nation = 25;
  const uint64_t n_supplier = Scaled(200, s);
  const uint64_t n_customer = Scaled(3000, s);
  const uint64_t n_part = Scaled(4000, s);
  const uint64_t n_partsupp = Scaled(16000, s);
  const uint64_t n_orders = Scaled(30000, s);
  const uint64_t n_lineitem = Scaled(60000, s);
  const int n_dates = 2500;

  {
    auto t = std::make_shared<Table>(Schema({{"r_regionkey", ValueType::kInt64},
                                             {"r_name", ValueType::kString}}));
    for (uint64_t i = 0; i < n_region; ++i) {
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value(static_cast<int64_t>(i)), Value("REGION" + std::to_string(i))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("region", t));
  }

  {
    SkewedColumn region_of(n_region, skew, rng);
    auto t = std::make_shared<Table>(Schema({{"n_nationkey", ValueType::kInt64},
                                             {"n_name", ValueType::kString},
                                             {"n_regionkey", ValueType::kInt64}}));
    for (uint64_t i = 0; i < n_nation; ++i) {
      MONSOON_RETURN_IF_ERROR(
          t->AppendRow({Value(static_cast<int64_t>(i)),
                        Value("NATION" + std::to_string(i)),
                        Value(static_cast<int64_t>(region_of.Next(rng)))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("nation", t));
  }

  {
    SkewedColumn nation_of(n_nation, skew, rng);
    auto t = std::make_shared<Table>(Schema({{"s_suppkey", ValueType::kInt64},
                                             {"s_name", ValueType::kString},
                                             {"s_nationkey", ValueType::kInt64},
                                             {"s_acctbal", ValueType::kDouble}}));
    for (uint64_t i = 0; i < n_supplier; ++i) {
      MONSOON_RETURN_IF_ERROR(
          t->AppendRow({Value(static_cast<int64_t>(i)),
                        Value("Supplier#" + std::to_string(i)),
                        Value(static_cast<int64_t>(nation_of.Next(rng))),
                        Value(rng.NextDouble() * 10000.0)}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("supplier", t));
  }

  {
    SkewedColumn nation_of(n_nation, skew, rng);
    SkewedColumn segment_of(5, skew, rng);
    auto t = std::make_shared<Table>(Schema({{"c_custkey", ValueType::kInt64},
                                             {"c_name", ValueType::kString},
                                             {"c_nationkey", ValueType::kInt64},
                                             {"c_mktsegment", ValueType::kString}}));
    for (uint64_t i = 0; i < n_customer; ++i) {
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value(static_cast<int64_t>(i)), Value("Customer#" + std::to_string(i)),
           Value(static_cast<int64_t>(nation_of.Next(rng))),
           Value("SEG" + std::to_string(segment_of.Next(rng)))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("customer", t));
  }

  {
    SkewedColumn brand_of(25, skew, rng);
    SkewedColumn size_of(50, skew, rng);
    auto t = std::make_shared<Table>(Schema({{"p_partkey", ValueType::kInt64},
                                             {"p_name", ValueType::kString},
                                             {"p_brand", ValueType::kString},
                                             {"p_size", ValueType::kInt64}}));
    for (uint64_t i = 0; i < n_part; ++i) {
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value(static_cast<int64_t>(i)), Value("Part#" + std::to_string(i)),
           Value("BRAND" + std::to_string(brand_of.Next(rng))),
           Value(static_cast<int64_t>(size_of.Next(rng) + 1))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("part", t));
  }

  {
    SkewedColumn part_of(n_part, skew, rng);
    SkewedColumn supp_of(n_supplier, skew, rng);
    auto t = std::make_shared<Table>(Schema({{"ps_partkey", ValueType::kInt64},
                                             {"ps_suppkey", ValueType::kInt64},
                                             {"ps_supplycost", ValueType::kDouble}}));
    for (uint64_t i = 0; i < n_partsupp; ++i) {
      MONSOON_RETURN_IF_ERROR(
          t->AppendRow({Value(static_cast<int64_t>(part_of.Next(rng))),
                        Value(static_cast<int64_t>(supp_of.Next(rng))),
                        Value(rng.NextDouble() * 1000.0)}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("partsupp", t));
  }

  {
    SkewedColumn cust_of(n_customer, skew, rng);
    SkewedColumn date_of(n_dates, skew, rng);
    SkewedColumn prio_of(5, skew, rng);
    auto t = std::make_shared<Table>(Schema({{"o_orderkey", ValueType::kInt64},
                                             {"o_custkey", ValueType::kInt64},
                                             {"o_orderdate", ValueType::kString},
                                             {"o_orderpriority", ValueType::kString}}));
    for (uint64_t i = 0; i < n_orders; ++i) {
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value(static_cast<int64_t>(i)),
           Value(static_cast<int64_t>(cust_of.Next(rng))),
           Value(TpchDate(static_cast<int>(date_of.Next(rng)))),
           Value("P" + std::to_string(prio_of.Next(rng)))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("orders", t));
  }

  {
    SkewedColumn order_of(n_orders, skew, rng);
    SkewedColumn part_of(n_part, skew, rng);
    SkewedColumn supp_of(n_supplier, skew, rng);
    SkewedColumn date_of(n_dates, skew, rng);
    auto t = std::make_shared<Table>(Schema({{"l_orderkey", ValueType::kInt64},
                                             {"l_partkey", ValueType::kInt64},
                                             {"l_suppkey", ValueType::kInt64},
                                             {"l_quantity", ValueType::kDouble},
                                             {"l_shipdate", ValueType::kString}}));
    for (uint64_t i = 0; i < n_lineitem; ++i) {
      MONSOON_RETURN_IF_ERROR(
          t->AppendRow({Value(static_cast<int64_t>(order_of.Next(rng))),
                        Value(static_cast<int64_t>(part_of.Next(rng))),
                        Value(static_cast<int64_t>(supp_of.Next(rng))),
                        Value(1.0 + std::floor(rng.NextDouble() * 50.0)),
                        Value(TpchDate(static_cast<int>(date_of.Next(rng))))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("lineitem", t));
  }

  return Status::OK();
}

}  // namespace

Status AddTpchTables(const TpchOptions& options, Catalog* catalog) {
  return BuildTables(options, catalog);
}

StatusOr<Workload> MakeTpchWorkload(const TpchOptions& options) {
  Workload workload;
  workload.name = std::string("tpch-") + SkewProfileToString(options.skew);
  workload.catalog = std::make_shared<Catalog>();
  MONSOON_RETURN_IF_ERROR(BuildTables(options, workload.catalog.get()));

  // Join-order-heavy query shapes (>= 3 relations), every predicate
  // obscured behind a UDF (bare attributes are wrapped in `identity` by
  // the parser; bucket UDFs obscure further).
  std::vector<std::string> sqls = {
      // Q1: the classic customer-orders-lineitem chain.
      "SELECT * FROM lineitem l, orders o, customer c "
      "WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey "
      "AND c.c_mktsegment = 'SEG2'",
      // Q2: part/supplier procurement chain.
      "SELECT * FROM partsupp ps, part p, supplier s "
      "WHERE ps.ps_partkey = p.p_partkey AND ps.ps_suppkey = s.s_suppkey "
      "AND p.p_brand = 'BRAND7'",
      // Q3: four-way chain with a nation filter.
      "SELECT * FROM lineitem l, orders o, customer c, nation n "
      "WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey "
      "AND c.c_nationkey = n.n_nationkey AND o.o_orderpriority = 'P1'",
      // Q4: supplier geography.
      "SELECT * FROM partsupp ps, supplier s, nation n, region r "
      "WHERE ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey "
      "AND n.n_regionkey = r.r_regionkey AND r.r_name = 'REGION2'",
      // Q5: five-way with a cycle (customer and supplier in one nation).
      "SELECT * FROM customer c, orders o, lineitem l, supplier s, nation n "
      "WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey "
      "AND l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey "
      "AND c.c_nationkey = n.n_nationkey AND n.n_name = 'NATION3'",
      // Q6: bucketed join keys obscure the key-foreign-key structure.
      "SELECT * FROM orders o, lineitem l, part p "
      "WHERE bucket1000(o.o_orderkey) = bucket1000(l.l_orderkey) "
      "AND l.l_partkey = p.p_partkey AND p.p_brand = 'BRAND3'",
      // Q7: star around nation.
      "SELECT * FROM supplier s, nation n, region r, customer c "
      "WHERE s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey "
      "AND c.c_nationkey = n.n_nationkey AND r.r_name = 'REGION1'",
      // Q8: six-way join.
      "SELECT * FROM customer c, orders o, lineitem l, part p, supplier s, nation n "
      "WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey "
      "AND l.l_partkey = p.p_partkey AND l.l_suppkey = s.s_suppkey "
      "AND s.s_nationkey = n.n_nationkey AND p.p_brand = 'BRAND11' "
      "AND o.o_orderpriority = 'P2'",
  };
  MONSOON_RETURN_IF_ERROR(AddSqlQueries("tpch-q", sqls, &workload));
  return workload;
}

const char* SkewProfileToString(SkewProfile profile) {
  switch (profile) {
    case SkewProfile::kNone:
      return "uniform";
    case SkewProfile::kLow:
      return "low";
    case SkewProfile::kHigh:
      return "high";
    case SkewProfile::kMixed:
      return "mixed";
  }
  return "?";
}

}  // namespace monsoon
