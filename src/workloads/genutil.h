#ifndef MONSOON_WORKLOADS_GENUTIL_H_
#define MONSOON_WORKLOADS_GENUTIL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "sql/parser.h"
#include "workloads/workload.h"

namespace monsoon {

/// Draws values in [0, domain) with a per-column skew profile: uniform for
/// kNone, Zipf(1) / Zipf(4) for kLow / kHigh, and a per-column z drawn
/// uniformly from [0, 4] for kMixed (matching Sec. 6.2.1).
class SkewedColumn {
 public:
  SkewedColumn(uint64_t domain, SkewProfile profile, Pcg32& rng);

  uint64_t Next(Pcg32& rng) const;
  uint64_t domain() const { return domain_; }

 private:
  uint64_t domain_;
  std::optional<ZipfGenerator> zipf_;
};

/// Parses each SQL string against the workload's catalog and appends the
/// resulting BenchQuery entries. Query names are "<prefix><index+1>".
Status AddSqlQueries(const std::string& prefix,
                     const std::vector<std::string>& sqls, Workload* workload);

/// "1992-01-01" + days, Gregorian-correct within 1992–1998.
std::string TpchDate(int days_since_epoch);

}  // namespace monsoon

#endif  // MONSOON_WORKLOADS_GENUTIL_H_
