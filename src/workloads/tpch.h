#ifndef MONSOON_WORKLOADS_TPCH_H_
#define MONSOON_WORKLOADS_TPCH_H_

#include "common/status.h"
#include "workloads/workload.h"

namespace monsoon {

/// Scaled-down TPC-H-like database and query suite.
///
/// The paper uses scale-factor 100 (≈100 GB) plus three skewed variants
/// produced by the Chaudhuri–Narasayya generator; neither fits this
/// environment, so the generator reproduces the *schema and distribution
/// structure* at laptop scale: eight tables with the standard key /
/// foreign-key relationships, and a Zipf(z) knob applied to every
/// foreign-key and attribute distribution for the skewed variants
/// (z = 1 low, z = 4 high, mixed = per-column random z ∈ [0, 4]).
///
/// `scale` multiplies all table sizes (scale 1 ≈ 100k rows total).
/// The suite contains the join-order-heavy query shapes (3–6 relations)
/// the paper restricts its TPC-H experiments to; every join and selection
/// predicate goes through a UDF, so no statistics are available up front.
struct TpchOptions {
  double scale = 1.0;
  SkewProfile skew = SkewProfile::kNone;
  uint64_t seed = 2020;
};

StatusOr<Workload> MakeTpchWorkload(const TpchOptions& options);

/// Adds just the eight TPC-H-like tables to an existing catalog (used by
/// the UDF benchmark, whose suite spans both its own tables and TPC-H).
Status AddTpchTables(const TpchOptions& options, Catalog* catalog);

}  // namespace monsoon

#endif  // MONSOON_WORKLOADS_TPCH_H_
