#include "workloads/udfbench.h"

#include <cmath>

#include "workloads/genutil.h"
#include "workloads/tpch.h"

namespace monsoon {

namespace {

uint64_t Scaled(double base, double scale) {
  return static_cast<uint64_t>(std::max(1.0, base * scale));
}

// Comma-separated item set; popular baskets recur so that set-equality
// self-joins have matches.
std::string MakeItems(Pcg32& rng, std::vector<std::string>* basket_pool) {
  if (!basket_pool->empty() && rng.NextDouble() < 0.35) {
    return (*basket_pool)[rng.NextBounded(
        static_cast<uint32_t>(basket_pool->size()))];
  }
  int size = 1 + static_cast<int>(rng.NextBounded(4));
  std::string items;
  for (int i = 0; i < size; ++i) {
    if (i > 0) items += ",";
    items += "i" + std::to_string(rng.NextBounded(200));
  }
  if (basket_pool->size() < 100) basket_pool->push_back(items);
  return items;
}

std::string MakeWhen(Pcg32& rng) {
  int day = static_cast<int>(rng.NextBounded(60));
  int month = 1 + day / 30;
  int dom = 1 + day % 30;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "2019-%02d-%02d %02d:%02d", month, dom,
                static_cast<int>(rng.NextBounded(24)),
                static_cast<int>(rng.NextBounded(60)));
  return buffer;
}

std::string MakeIp(Pcg32& rng) {
  // ~300 distinct /16 prefixes -> city_from_ip yields ~300 cities.
  uint32_t prefix = rng.NextBounded(300);
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%u.%u.%u.%u", 10 + prefix / 50,
                prefix % 250, rng.NextBounded(256), rng.NextBounded(256));
  return buffer;
}

Status BuildTables(const UdfBenchOptions& options, Catalog* catalog) {
  Pcg32 rng(options.seed);
  double s = options.scale;

  const uint64_t n_docs = Scaled(8000, s);
  const uint64_t n_docinfo = Scaled(3000, s);
  const uint64_t n_authorinfo = Scaled(500, s);
  const uint64_t n_sess = Scaled(10000, s);
  const uint64_t n_orders = Scaled(6000, s);
  const uint64_t n_doc_keys = Scaled(4000, s);
  const uint64_t n_customers = Scaled(2500, s);

  std::vector<std::string> basket_pool;

  {
    auto t = std::make_shared<Table>(Schema({{"d_text", ValueType::kString},
                                             {"d_when", ValueType::kString},
                                             {"d_items", ValueType::kString},
                                             {"d_cust", ValueType::kInt64}}));
    ZipfGenerator key_zipf(n_doc_keys, 0.8);
    for (uint64_t i = 0; i < n_docs; ++i) {
      std::string text = "id=\"D" + std::to_string(key_zipf.Next(rng) - 1) +
                         "\" url=\"http://example.com/" + std::to_string(i) +
                         "\" author=\"A" + std::to_string(rng.NextBounded(
                             static_cast<uint32_t>(n_authorinfo))) +
                         "\" body=\"lorem ipsum\"";
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value(std::move(text)), Value(MakeWhen(rng)),
           Value(MakeItems(rng, &basket_pool)),
           Value(static_cast<int64_t>(rng.NextBounded(
               static_cast<uint32_t>(n_customers))))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("docs", t));
  }

  {
    auto t = std::make_shared<Table>(
        Schema({{"di_key", ValueType::kString}, {"di_info", ValueType::kString}}));
    for (uint64_t i = 0; i < n_docinfo; ++i) {
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value("D" + std::to_string(i % n_doc_keys)),
           Value("docmeta" + std::to_string(i))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("docinfo", t));
  }

  {
    auto t = std::make_shared<Table>(
        Schema({{"ai_key", ValueType::kString}, {"ai_info", ValueType::kString}}));
    for (uint64_t i = 0; i < n_authorinfo; ++i) {
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value("A" + std::to_string(i)), Value("bio" + std::to_string(i))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("authorinfo", t));
  }

  {
    auto t = std::make_shared<Table>(
        Schema({{"se_cust", ValueType::kInt64}, {"se_ip", ValueType::kString}}));
    ZipfGenerator cust_zipf(n_customers, 1.0);  // heavy sessioners
    for (uint64_t i = 0; i < n_sess; ++i) {
      MONSOON_RETURN_IF_ERROR(
          t->AppendRow({Value(static_cast<int64_t>(cust_zipf.Next(rng) - 1)),
                        Value(MakeIp(rng))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("sess", t));
  }

  {
    auto t = std::make_shared<Table>(Schema({{"ou_items", ValueType::kString},
                                             {"ou_when", ValueType::kString},
                                             {"ou_cust", ValueType::kInt64}}));
    for (uint64_t i = 0; i < n_orders; ++i) {
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value(MakeItems(rng, &basket_pool)), Value(MakeWhen(rng)),
           Value(static_cast<int64_t>(
               rng.NextBounded(static_cast<uint32_t>(n_customers))))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("orders_u", t));
  }

  // The 10 TPC-H-style queries run over a small uniform TPC-H instance in
  // the same catalog.
  TpchOptions tpch;
  tpch.scale = 0.5 * s;
  tpch.skew = SkewProfile::kNone;
  tpch.seed = options.seed + 7;
  MONSOON_RETURN_IF_ERROR(AddTpchTables(tpch, catalog));
  return Status::OK();
}

}  // namespace

StatusOr<Workload> MakeUdfBenchWorkload(const UdfBenchOptions& options) {
  Workload workload;
  workload.name = "udf";
  workload.catalog = std::make_shared<Catalog>();
  MONSOON_RETURN_IF_ERROR(BuildTables(options, workload.catalog.get()));

  std::vector<std::string> sqls;

  // ---- 15 document/session-style queries ("IMDB-translated") ----
  // U1: the paper's introduction pipeline — extract doc id and author,
  // join with docinfo and authorinfo.
  sqls.push_back(
      "SELECT * FROM docs d, docinfo di, authorinfo ai "
      "WHERE extract_id(d.d_text) = di.di_key "
      "AND extract_author(d.d_text) = ai.ai_key");
  // U2: add a date filter.
  for (const char* date : {"2019-01-11", "2019-02-03"}) {
    sqls.push_back(
        "SELECT * FROM docs d, docinfo di, authorinfo ai "
        "WHERE extract_id(d.d_text) = di.di_key "
        "AND extract_author(d.d_text) = ai.ai_key "
        "AND extract_date(d.d_when) = '" + std::string(date) + "'");
  }
  // U4: documents joined to the sessions of their customers by city.
  sqls.push_back(
      "SELECT * FROM docs d, sess s1, sess s2 "
      "WHERE d.d_cust = s1.se_cust "
      "AND city_from_ip(s1.se_ip) = city_from_ip(s2.se_ip) "
      "AND extract_date(d.d_when) = '2019-01-05'");
  // U5: the Sec. 2.1 fraudulent-orders query (set equality + same city).
  sqls.push_back(
      "SELECT * FROM orders_u o1, orders_u o2, sess s1, sess s2 "
      "WHERE canonical_set(o1.ou_items) = canonical_set(o2.ou_items) "
      "AND extract_date(o1.ou_when) = '2019-01-11' "
      "AND extract_date(o2.ou_when) = '2019-01-11' "
      "AND o1.ou_cust = s1.se_cust AND o2.ou_cust = s2.se_cust "
      "AND o1.ou_cust <> o2.ou_cust "
      "AND city_from_ip(s1.se_ip) = city_from_ip(s2.se_ip)");
  // U6: fraud variant on a different day without the city filter.
  sqls.push_back(
      "SELECT * FROM orders_u o1, orders_u o2, sess s1 "
      "WHERE canonical_set(o1.ou_items) = canonical_set(o2.ou_items) "
      "AND extract_date(o1.ou_when) = '2019-02-07' "
      "AND o1.ou_cust = s1.se_cust AND o1.ou_cust <> o2.ou_cust");
  // U7: orders matched to documents with identical item sets.
  for (const char* date : {"2019-01-20", "2019-02-14"}) {
    sqls.push_back(
        "SELECT * FROM orders_u o, docs d, sess s "
        "WHERE canonical_set(o.ou_items) = canonical_set(d.d_items) "
        "AND d.d_cust = s.se_cust "
        "AND extract_date(o.ou_when) = '" + std::string(date) + "'");
  }
  // U9: author-centric chain through docs to sessions.
  sqls.push_back(
      "SELECT * FROM authorinfo ai, docs d, sess s "
      "WHERE extract_author(d.d_text) = ai.ai_key "
      "AND d.d_cust = s.se_cust");
  // U10: four-way document chain.
  sqls.push_back(
      "SELECT * FROM docs d, docinfo di, authorinfo ai, sess s "
      "WHERE extract_id(d.d_text) = di.di_key "
      "AND extract_author(d.d_text) = ai.ai_key "
      "AND d.d_cust = s.se_cust "
      "AND extract_date(d.d_when) = '2019-01-30'");
  // U11: same-city session pairs for order customers.
  sqls.push_back(
      "SELECT * FROM orders_u o, sess s1, sess s2 "
      "WHERE o.ou_cust = s1.se_cust "
      "AND city_from_ip(s1.se_ip) = city_from_ip(s2.se_ip) "
      "AND extract_date(o.ou_when) = '2019-01-02'");
  // U12: doc pairs by identical item sets (self-join on canonical_set).
  sqls.push_back(
      "SELECT * FROM docs d1, docs d2, docinfo di "
      "WHERE canonical_set(d1.d_items) = canonical_set(d2.d_items) "
      "AND extract_id(d1.d_text) = di.di_key "
      "AND extract_date(d1.d_when) = '2019-01-09' "
      "AND extract_date(d2.d_when) = '2019-01-09'");
  // U13: multi-table UDF — a (doc customer, session customer) pair key
  // matched against bucketed order customers; statistics for the pair
  // term exist only after docs ⋈ sess.
  sqls.push_back(
      "SELECT * FROM docs d, sess s, orders_u o "
      "WHERE d.d_cust = s.se_cust "
      "AND pair_key(d.d_cust, s.se_cust) = bucket10000(o.ou_cust) "
      "AND extract_date(d.d_when) = '2019-01-03'");
  // U14: multi-table UDF over the two order instances of a fraud pair.
  sqls.push_back(
      "SELECT * FROM orders_u o1, orders_u o2, sess s "
      "WHERE canonical_set(o1.ou_items) = canonical_set(o2.ou_items) "
      "AND pair_key(o1.ou_cust, o2.ou_cust) = bucket10000(s.se_cust) "
      "AND extract_date(o1.ou_when) = '2019-01-11'");
  // U15: wide five-way.
  sqls.push_back(
      "SELECT * FROM docs d, docinfo di, authorinfo ai, sess s1, sess s2 "
      "WHERE extract_id(d.d_text) = di.di_key "
      "AND extract_author(d.d_text) = ai.ai_key "
      "AND d.d_cust = s1.se_cust "
      "AND city_from_ip(s1.se_ip) = city_from_ip(s2.se_ip) "
      "AND extract_date(d.d_when) = '2019-02-01'");

  // ---- 10 TPC-H-style queries with obscured keys ----
  sqls.push_back(
      "SELECT * FROM orders o, lineitem l, customer c "
      "WHERE bucket10000(o.o_orderkey) = bucket10000(l.l_orderkey) "
      "AND o.o_custkey = c.c_custkey AND o.o_orderpriority = 'P1'");
  sqls.push_back(
      "SELECT * FROM lineitem l, part p, supplier s "
      "WHERE bucket10000(l.l_partkey) = bucket10000(p.p_partkey) "
      "AND l.l_suppkey = s.s_suppkey AND p.p_brand = 'BRAND5'");
  sqls.push_back(
      "SELECT * FROM customer c, orders o, lineitem l, supplier s "
      "WHERE c.c_custkey = o.o_custkey "
      "AND bucket10000(o.o_orderkey) = bucket10000(l.l_orderkey) "
      "AND l.l_suppkey = s.s_suppkey AND c.c_mktsegment = 'SEG1'");
  sqls.push_back(
      "SELECT * FROM partsupp ps, part p, supplier s, nation n "
      "WHERE bucket10000(ps.ps_partkey) = bucket10000(p.p_partkey) "
      "AND ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey "
      "AND n.n_name = 'NATION7'");
  sqls.push_back(
      "SELECT * FROM orders o, lineitem l, part p "
      "WHERE bucket1000(o.o_orderkey) = bucket1000(l.l_orderkey) "
      "AND bucket1000(l.l_partkey) = bucket1000(p.p_partkey) "
      "AND extract_date(o.o_orderdate) = '1994-03-15'");
  sqls.push_back(
      "SELECT * FROM customer c, orders o, nation n, region r "
      "WHERE c.c_custkey = o.o_custkey AND c.c_nationkey = n.n_nationkey "
      "AND n.n_regionkey = r.r_regionkey AND r.r_name = 'REGION3' "
      "AND o.o_orderpriority = 'P4'");
  // Multi-table UDF: (customer nation, order key) pair vs lineitem.
  sqls.push_back(
      "SELECT * FROM customer c, orders o, lineitem l "
      "WHERE c.c_custkey = o.o_custkey "
      "AND pair_key(c.c_nationkey, o.o_orderkey) = bucket10000(l.l_orderkey)");
  // Multi-table UDF: (supplier, part) pair from partsupp vs lineitem.
  sqls.push_back(
      "SELECT * FROM partsupp ps, supplier s, lineitem l "
      "WHERE ps.ps_suppkey = s.s_suppkey "
      "AND pair_key(ps.ps_partkey, ps.ps_suppkey) = bucket10000(l.l_orderkey)");
  sqls.push_back(
      "SELECT * FROM supplier s, nation n, customer c, orders o "
      "WHERE s.s_nationkey = n.n_nationkey AND c.c_nationkey = n.n_nationkey "
      "AND c.c_custkey = o.o_custkey AND n.n_name = 'NATION2'");
  sqls.push_back(
      "SELECT * FROM lineitem l, orders o, customer c, nation n, supplier s "
      "WHERE bucket10000(l.l_orderkey) = bucket10000(o.o_orderkey) "
      "AND o.o_custkey = c.c_custkey AND c.c_nationkey = n.n_nationkey "
      "AND l.l_suppkey = s.s_suppkey AND o.o_orderpriority = 'P3'");

  MONSOON_RETURN_IF_ERROR(AddSqlQueries("udf-q", sqls, &workload));
  return workload;
}

}  // namespace monsoon
