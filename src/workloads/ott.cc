#include "workloads/ott.h"

#include "plan/logical_ops.h"
#include "workloads/genutil.h"

namespace monsoon {

namespace {

Status BuildTables(const OttOptions& options, Catalog* catalog) {
  uint64_t n = options.rows_per_table;
  uint64_t K = options.key_cardinality;
  for (int table = 1; table <= 5; ++table) {
    auto t = std::make_shared<Table>(Schema({{"id", ValueType::kInt64},
                                             {"a", ValueType::kInt64},
                                             {"b", ValueType::kInt64},
                                             {"c", ValueType::kInt64}}));
    t->Reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      int64_t a = static_cast<int64_t>(i % K);
      // b is a perfect copy of a: the correlation trap.
      int64_t b = a;
      // c domains are disjoint across tables: cross-table c-joins are empty.
      int64_t c = static_cast<int64_t>(static_cast<uint64_t>(table) * n + i);
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value(static_cast<int64_t>(i)), Value(a), Value(b), Value(c)}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("ott" + std::to_string(table), t));
  }
  return Status::OK();
}

// A chain query over `num_tables` relations; edges[i] connects t(i), t(i+1)
// and is one of:
//   'T' — correlation trap:  a = a AND b = b  (estimated tiny, truly huge)
//   'C' — empty join:        c = c            (estimated ~n, truly empty)
//   'A' — plain join:        a = a            (estimated and truly n²/K)
struct ChainSpec {
  int num_tables;
  const char* edges;  // length num_tables - 1
};

std::string ChainSql(const ChainSpec& spec) {
  std::string sql = "SELECT * FROM ";
  for (int i = 0; i < spec.num_tables; ++i) {
    if (i > 0) sql += ", ";
    sql += "ott" + std::to_string(i + 1) + " t" + std::to_string(i + 1);
  }
  sql += " WHERE ";
  for (int e = 0; e < spec.num_tables - 1; ++e) {
    std::string l = "t" + std::to_string(e + 1);
    std::string r = "t" + std::to_string(e + 2);
    if (e > 0) sql += " AND ";
    switch (spec.edges[e]) {
      case 'T':
        sql += l + ".a = " + r + ".a AND " + l + ".b = " + r + ".b";
        break;
      case 'C':
        sql += l + ".c = " + r + ".c";
        break;
      case 'A':
        sql += l + ".a = " + r + ".a";
        break;
    }
  }
  return sql;
}

// Hand-written plan: evaluate the (only) empty c-edge first; the rest of
// the chain folds onto an empty intermediate for free.
PlanNode::Ptr HandPlan(const QuerySpec& query, const ChainSpec& spec) {
  int empty_edge = 0;
  for (int e = 0; e < spec.num_tables - 1; ++e) {
    if (spec.edges[e] == 'C') empty_edge = e;
  }
  std::vector<int> order = {empty_edge, empty_edge + 1};
  for (int i = empty_edge + 2; i < spec.num_tables; ++i) order.push_back(i);
  for (int i = empty_edge - 1; i >= 0; --i) order.push_back(i);

  PlanNode::Ptr plan = MakeLeaf(query, order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    PlanNode::Ptr leaf = MakeLeaf(query, order[i]);
    std::vector<int> preds =
        ApplicableJoinPreds(query, plan->output_sig(), leaf->output_sig());
    plan = PlanNode::Join(plan, leaf, std::move(preds));
  }
  return plan;
}

}  // namespace

StatusOr<Workload> MakeOttWorkload(const OttOptions& options) {
  Workload workload;
  workload.name = "ott";
  workload.catalog = std::make_shared<Catalog>();
  MONSOON_RETURN_IF_ERROR(BuildTables(options, workload.catalog.get()));

  // Twenty chain queries mixing trap counts (difficulty) and the position
  // of the empty edge. Every final result is empty.
  static const ChainSpec kSpecs[] = {
      {3, "TC"}, {3, "CT"}, {3, "AC"}, {3, "CA"},
      {4, "TCA"}, {4, "TCT"}, {4, "CTT"}, {4, "TTC"},
      {4, "ACT"}, {4, "CAT"}, {4, "TAC"},
      {5, "TCTA"}, {5, "TTCA"}, {5, "CTTA"}, {5, "ATCT"},
      {5, "TTTC"}, {5, "CATT"}, {5, "ACTT"}, {5, "TCAT"}, {5, "ATCA"},
  };

  SqlParser parser(workload.catalog.get());
  int index = 0;
  for (const ChainSpec& spec : kSpecs) {
    ++index;
    std::string sql = ChainSql(spec);
    MONSOON_ASSIGN_OR_RETURN(QuerySpec parsed, parser.Parse(sql));
    BenchQuery query;
    query.name = "ott-q" + std::to_string(index);
    query.sql = sql;
    query.spec = std::move(parsed);
    query.hand_plan = HandPlan(query.spec, spec);
    workload.queries.push_back(std::move(query));
  }
  return workload;
}

}  // namespace monsoon
