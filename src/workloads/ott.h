#ifndef MONSOON_WORKLOADS_OTT_H_
#define MONSOON_WORKLOADS_OTT_H_

#include "common/status.h"
#include "workloads/workload.h"

namespace monsoon {

/// Correlated Optimizer Torture Tests, after Wu et al. [45] Sec. 5.3.
///
/// Five tables ott1..ott5, n rows each, with three columns designed to
/// defeat cardinality estimation built on per-column statistics and the
/// independence assumption:
///
///   a = id mod K    — low-cardinality join column (joins blow up: n²/K);
///   b = a           — perfect copy of `a`. A conjunction
///                     "ti.a = tj.a AND ti.b = tj.b" is estimated as
///                     sel(a)·sel(b) = 1/K² (tiny) but its true size is
///                     n²/K (huge): the correlation trap.
///   c               — per-table disjoint domains, so every cross-table
///                     "ti.c = tj.c" join is EMPTY, while per-column
///                     statistics (d = n) estimate it at size ~n.
///
/// Every query's final result is empty; each contains exactly one empty
/// c-join plus one or more correlation traps. The hand-written plan
/// (paper baseline) evaluates the empty join first, so everything
/// downstream is free; estimator-driven plans are lured into the trap
/// joins first. K is chosen with K² > n so even exact per-column
/// statistics rank the trap "cheaper" than the empty join.
struct OttOptions {
  uint64_t rows_per_table = 8000;
  uint64_t key_cardinality = 200;  // K; keep K² > rows_per_table
  uint64_t seed = 45;
};

StatusOr<Workload> MakeOttWorkload(const OttOptions& options);

}  // namespace monsoon

#endif  // MONSOON_WORKLOADS_OTT_H_
