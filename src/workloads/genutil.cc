#include "workloads/genutil.h"

namespace monsoon {

SkewedColumn::SkewedColumn(uint64_t domain, SkewProfile profile, Pcg32& rng)
    : domain_(domain == 0 ? 1 : domain) {
  double z = 0;
  switch (profile) {
    case SkewProfile::kNone:
      z = 0;
      break;
    case SkewProfile::kLow:
      z = 1;
      break;
    case SkewProfile::kHigh:
      z = 4;
      break;
    case SkewProfile::kMixed:
      z = rng.NextDouble() * 4.0;
      break;
  }
  if (z > 0) zipf_.emplace(domain_, z);
}

uint64_t SkewedColumn::Next(Pcg32& rng) const {
  if (zipf_.has_value()) return zipf_->Next(rng) - 1;
  return static_cast<uint64_t>(rng.NextInt64(0, static_cast<int64_t>(domain_) - 1));
}

Status AddSqlQueries(const std::string& prefix,
                     const std::vector<std::string>& sqls, Workload* workload) {
  SqlParser parser(workload->catalog.get());
  for (size_t i = 0; i < sqls.size(); ++i) {
    MONSOON_ASSIGN_OR_RETURN(QuerySpec spec, parser.Parse(sqls[i]));
    BenchQuery query;
    query.name = prefix + std::to_string(i + 1);
    query.sql = sqls[i];
    query.spec = std::move(spec);
    workload->queries.push_back(std::move(query));
  }
  return Status::OK();
}

std::string TpchDate(int days_since_epoch) {
  static const int kDaysPerMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  int year = 1992;
  int days = days_since_epoch;
  for (;;) {
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    int in_year = leap ? 366 : 365;
    if (days < in_year) break;
    days -= in_year;
    ++year;
  }
  bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
  int month = 0;
  for (; month < 12; ++month) {
    int dim = kDaysPerMonth[month] + (month == 1 && leap ? 1 : 0);
    if (days < dim) break;
    days -= dim;
  }
  // Sized for the worst case snprintf can prove (full int widths), not the
  // 10 bytes a real date needs — keeps -Wformat-truncation quiet under -Werror.
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02d", year, month + 1, days + 1);
  return buffer;
}

}  // namespace monsoon
