#include "workloads/imdb.h"

#include <cmath>
#include <map>
#include <utility>

#include "workloads/genutil.h"

namespace monsoon {

namespace {

uint64_t Scaled(double base, double scale) {
  return static_cast<uint64_t>(std::max(1.0, base * scale));
}

Status BuildTables(const ImdbOptions& options, Catalog* catalog) {
  Pcg32 rng(options.seed);
  double s = options.scale;

  const uint64_t n_title = Scaled(10000, s);
  const uint64_t n_company = Scaled(500, s);
  const uint64_t n_movie_companies = Scaled(20000, s);
  const uint64_t n_info_type = 20;
  const uint64_t n_movie_info = Scaled(30000, s);
  const uint64_t n_name = Scaled(8000, s);
  const uint64_t n_cast = Scaled(40000, s);
  const uint64_t n_keyword = Scaled(1500, s);
  const uint64_t n_movie_keyword = Scaled(25000, s);
  const int n_kinds = 7;

  // Blockbuster effect: a few movies soak up most of the fan-out rows.
  // Fan-outs are capped per movie (as in real data: cast sizes are
  // bounded) so that star joins blow up through *bad plans*, not through
  // an intrinsically huge result.
  std::map<std::pair<int, int64_t>, int> fanout;  // (table id, movie) -> rows
  auto draw_movie = [&fanout](ZipfGenerator& zipf, Pcg32& gen, int table_id,
                              int cap) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      int64_t movie = static_cast<int64_t>(zipf.Next(gen) - 1);
      int& count = fanout[{table_id, movie}];
      if (count < cap) {
        ++count;
        return movie;
      }
    }
    // Fall back to a uniform pick (caps only bind for the hottest ids).
    return static_cast<int64_t>(zipf.Next(gen) - 1);
  };
  ZipfGenerator movie_zipf(n_title, 1.1);
  ZipfGenerator company_zipf(n_company, 1.2);
  ZipfGenerator person_zipf(n_name, 1.05);
  ZipfGenerator keyword_zipf(n_keyword, 1.3);
  ZipfGenerator country_zipf(30, 1.5);
  ZipfGenerator info_val_zipf(200, 1.4);

  {
    auto t = std::make_shared<Table>(Schema({{"t_id", ValueType::kInt64},
                                             {"t_kind", ValueType::kInt64},
                                             {"t_year", ValueType::kInt64},
                                             {"t_votes", ValueType::kInt64}}));
    for (uint64_t i = 0; i < n_title; ++i) {
      int64_t kind = static_cast<int64_t>(i % n_kinds);
      // Correlation: production year depends on kind (different media
      // kinds have different eras), plus noise — breaks independence
      // between t_kind and t_year selections.
      int64_t year = 1950 + (kind * 10 + static_cast<int64_t>(rng.NextBounded(15))) % 70;
      int64_t votes = static_cast<int64_t>(
          std::pow(10.0, rng.NextDouble() * 5.0));  // log-uniform popularity
      MONSOON_RETURN_IF_ERROR(t->AppendRow({Value(static_cast<int64_t>(i)),
                                            Value(kind), Value(year), Value(votes)}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("title", t));
  }

  {
    auto t = std::make_shared<Table>(Schema(
        {{"cn_id", ValueType::kInt64}, {"cn_country", ValueType::kString}}));
    for (uint64_t i = 0; i < n_company; ++i) {
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value(static_cast<int64_t>(i)),
           Value("COUNTRY" + std::to_string(country_zipf.Next(rng) - 1))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("company_name", t));
  }

  {
    auto t = std::make_shared<Table>(Schema({{"mc_movie", ValueType::kInt64},
                                             {"mc_company", ValueType::kInt64},
                                             {"mc_note", ValueType::kString}}));
    for (uint64_t i = 0; i < n_movie_companies; ++i) {
      int64_t movie = draw_movie(movie_zipf, rng, /*table_id=*/1, /*cap=*/20);
      // Correlation: big studios (low company ids) attach to popular
      // (low-id) movies more often.
      int64_t company = static_cast<int64_t>(
          (company_zipf.Next(rng) - 1 + static_cast<uint64_t>(movie) % 7) % n_company);
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value(movie), Value(company),
           Value(std::string(i % 3 == 0 ? "(production)" : "(distribution)"))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("movie_companies", t));
  }

  {
    auto t = std::make_shared<Table>(
        Schema({{"it_id", ValueType::kInt64}, {"it_info", ValueType::kString}}));
    for (uint64_t i = 0; i < n_info_type; ++i) {
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value(static_cast<int64_t>(i)), Value("type" + std::to_string(i))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("info_type", t));
  }

  {
    auto t = std::make_shared<Table>(Schema({{"mi_movie", ValueType::kInt64},
                                             {"mi_type", ValueType::kInt64},
                                             {"mi_info", ValueType::kString}}));
    for (uint64_t i = 0; i < n_movie_info; ++i) {
      int64_t movie = draw_movie(movie_zipf, rng, /*table_id=*/2, /*cap=*/30);
      // Correlation: info type clusters by movie kind (movie % kinds).
      int64_t type = (movie % n_kinds * 3 + static_cast<int64_t>(rng.NextBounded(3))) %
                     static_cast<int64_t>(n_info_type);
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value(movie), Value(type),
           Value("info" + std::to_string(info_val_zipf.Next(rng) - 1))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("movie_info", t));
  }

  {
    auto t = std::make_shared<Table>(
        Schema({{"n_id", ValueType::kInt64}, {"n_gender", ValueType::kString}}));
    for (uint64_t i = 0; i < n_name; ++i) {
      MONSOON_RETURN_IF_ERROR(
          t->AppendRow({Value(static_cast<int64_t>(i)),
                        Value(std::string(rng.NextBounded(3) == 0 ? "f" : "m"))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("name", t));
  }

  {
    auto t = std::make_shared<Table>(Schema({{"ci_movie", ValueType::kInt64},
                                             {"ci_person", ValueType::kInt64},
                                             {"ci_role", ValueType::kInt64}}));
    for (uint64_t i = 0; i < n_cast; ++i) {
      MONSOON_RETURN_IF_ERROR(
          t->AppendRow({Value(draw_movie(movie_zipf, rng, /*table_id=*/3, /*cap=*/50)),
                        Value(static_cast<int64_t>(person_zipf.Next(rng) - 1)),
                        Value(static_cast<int64_t>(rng.NextBounded(10)))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("cast_info", t));
  }

  {
    auto t = std::make_shared<Table>(
        Schema({{"k_id", ValueType::kInt64}, {"k_keyword", ValueType::kString}}));
    for (uint64_t i = 0; i < n_keyword; ++i) {
      MONSOON_RETURN_IF_ERROR(t->AppendRow(
          {Value(static_cast<int64_t>(i)), Value("kw" + std::to_string(i))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("keyword", t));
  }

  {
    auto t = std::make_shared<Table>(Schema(
        {{"mk_movie", ValueType::kInt64}, {"mk_keyword", ValueType::kInt64}}));
    for (uint64_t i = 0; i < n_movie_keyword; ++i) {
      MONSOON_RETURN_IF_ERROR(
          t->AppendRow({Value(draw_movie(movie_zipf, rng, /*table_id=*/4, /*cap=*/30)),
                        Value(static_cast<int64_t>(keyword_zipf.Next(rng) - 1))}));
    }
    MONSOON_RETURN_IF_ERROR(catalog->AddTable("movie_keyword", t));
  }

  return Status::OK();
}

}  // namespace

StatusOr<Workload> MakeImdbWorkload(const ImdbOptions& options) {
  Workload workload;
  workload.name = "imdb";
  workload.catalog = std::make_shared<Catalog>();
  MONSOON_RETURN_IF_ERROR(BuildTables(options, workload.catalog.get()));

  // JOB-style query families: chains, stars and cycles over 3–8
  // relations, with selections spanning four orders of magnitude of
  // selectivity. Constants vary per family instance.
  std::vector<std::string> sqls;
  // Family A: movie -> companies -> company_name (3-way chain).
  for (int v : {0, 3, 11}) {
    sqls.push_back(
        "SELECT * FROM title t, movie_companies mc, company_name cn "
        "WHERE t.t_id = mc.mc_movie AND mc.mc_company = cn.cn_id "
        "AND cn.cn_country = 'COUNTRY" + std::to_string(v) + "'");
  }
  // Family B: movie info typed lookups (3-way).
  for (int v : {1, 7, 15}) {
    sqls.push_back(
        "SELECT * FROM title t, movie_info mi, info_type it "
        "WHERE t.t_id = mi.mi_movie AND mi.mi_type = it.it_id "
        "AND it.it_info = 'type" + std::to_string(v) + "'");
  }
  // Family C: cast chains (4-way).
  for (int kind : {0, 2, 5}) {
    sqls.push_back(
        "SELECT * FROM title t, cast_info ci, name n, movie_companies mc "
        "WHERE t.t_id = ci.ci_movie AND ci.ci_person = n.n_id "
        "AND mc.mc_movie = t.t_id AND t.t_kind = " + std::to_string(kind));
  }
  // Family D: keyword star (4-way).
  for (int v : {2, 9, 40}) {
    sqls.push_back(
        "SELECT * FROM title t, movie_keyword mk, keyword k, movie_info mi "
        "WHERE t.t_id = mk.mk_movie AND mk.mk_keyword = k.k_id "
        "AND mi.mi_movie = t.t_id AND k.k_keyword = 'kw" + std::to_string(v) + "'");
  }
  // Family E: five-way star around title.
  for (int kind : {1, 4}) {
    sqls.push_back(
        "SELECT * FROM title t, cast_info ci, movie_info mi, movie_companies mc, "
        "company_name cn "
        "WHERE t.t_id = ci.ci_movie AND t.t_id = mi.mi_movie "
        "AND t.t_id = mc.mc_movie AND mc.mc_company = cn.cn_id "
        "AND t.t_kind = " + std::to_string(kind));
  }
  // Family F: year-range style selections (equality on a correlated
  // attribute — the correlation with t_kind misleads estimators).
  for (int year : {1965, 1988, 2004}) {
    sqls.push_back(
        "SELECT * FROM title t, movie_info mi, cast_info ci "
        "WHERE t.t_id = mi.mi_movie AND t.t_id = ci.ci_movie "
        "AND t.t_year = " + std::to_string(year));
  }
  // Family G: six-way with two dimension filters.
  for (int v : {0, 5}) {
    sqls.push_back(
        "SELECT * FROM title t, movie_companies mc, company_name cn, "
        "movie_info mi, info_type it, cast_info ci "
        "WHERE t.t_id = mc.mc_movie AND mc.mc_company = cn.cn_id "
        "AND t.t_id = mi.mi_movie AND mi.mi_type = it.it_id "
        "AND t.t_id = ci.ci_movie "
        "AND cn.cn_country = 'COUNTRY" + std::to_string(v) + "' "
        "AND it.it_info = 'type3'");
  }
  // Family H: person-centric cycles.
  for (int role : {0, 4, 8}) {
    sqls.push_back(
        "SELECT * FROM name n, cast_info ci, title t, movie_keyword mk "
        "WHERE n.n_id = ci.ci_person AND ci.ci_movie = t.t_id "
        "AND mk.mk_movie = t.t_id AND ci.ci_role = " + std::to_string(role) +
        " AND n.n_gender = 'f'");
  }
  // Family I: bucketed (obscured) join keys.
  for (int b : {100, 1000}) {
    sqls.push_back(
        "SELECT * FROM title t, cast_info ci, movie_info mi "
        "WHERE bucket" + std::to_string(b) + "(t.t_id) = bucket" +
        std::to_string(b) + "(ci.ci_movie) AND mi.mi_movie = t.t_id "
        "AND t.t_kind = 2");
  }
  // Family J: seven- and eight-way monsters.
  sqls.push_back(
      "SELECT * FROM title t, cast_info ci, name n, movie_info mi, info_type it, "
      "movie_companies mc, company_name cn "
      "WHERE t.t_id = ci.ci_movie AND ci.ci_person = n.n_id "
      "AND t.t_id = mi.mi_movie AND mi.mi_type = it.it_id "
      "AND t.t_id = mc.mc_movie AND mc.mc_company = cn.cn_id "
      "AND it.it_info = 'type5' AND n.n_gender = 'f'");
  sqls.push_back(
      "SELECT * FROM title t, cast_info ci, name n, movie_info mi, info_type it, "
      "movie_companies mc, company_name cn, movie_keyword mk "
      "WHERE t.t_id = ci.ci_movie AND ci.ci_person = n.n_id "
      "AND t.t_id = mi.mi_movie AND mi.mi_type = it.it_id "
      "AND t.t_id = mc.mc_movie AND mc.mc_company = cn.cn_id "
      "AND t.t_id = mk.mk_movie "
      "AND cn.cn_country = 'COUNTRY1' AND t.t_kind = 3");
  // Family K: highly selective point lookups chained wide.
  for (int votes : {10, 1000}) {
    sqls.push_back(
        "SELECT * FROM title t, movie_keyword mk, keyword k "
        "WHERE t.t_id = mk.mk_movie AND mk.mk_keyword = k.k_id "
        "AND t.t_votes = " + std::to_string(votes));
  }
  // Family L: company-centric reverse chains.
  for (int v : {0, 2}) {
    sqls.push_back(
        "SELECT * FROM company_name cn, movie_companies mc, title t, movie_info mi "
        "WHERE cn.cn_id = mc.mc_company AND mc.mc_movie = t.t_id "
        "AND t.t_id = mi.mi_movie AND cn.cn_country = 'COUNTRY" +
        std::to_string(v) + "' AND t.t_kind = " + std::to_string(v + 1));
  }

  MONSOON_RETURN_IF_ERROR(AddSqlQueries("imdb-q", sqls, &workload));
  return workload;
}

}  // namespace monsoon
