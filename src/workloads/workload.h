#ifndef MONSOON_WORKLOADS_WORKLOAD_H_
#define MONSOON_WORKLOADS_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/plan_node.h"
#include "query/query_spec.h"

namespace monsoon {

/// One benchmark query: a parsed spec plus, where the benchmark defines
/// one (OTT), a hand-written plan.
struct BenchQuery {
  std::string name;
  std::string sql;  // source text (documentation / debugging)
  QuerySpec spec;
  PlanNode::Ptr hand_plan;  // may be null
};

/// A generated benchmark: data + query suite. All generators are
/// deterministic given their seed so experiment tables are reproducible.
struct Workload {
  std::string name;
  std::shared_ptr<Catalog> catalog;
  std::vector<BenchQuery> queries;
};

/// Degree of Zipfian skew for the skewed TPC-H variants (Sec. 6.2.1).
enum class SkewProfile {
  kNone,   // classic uniform TPC-H
  kLow,    // z = 1
  kHigh,   // z = 4
  kMixed,  // per-column z drawn uniformly from [0, 4]
};

const char* SkewProfileToString(SkewProfile profile);

}  // namespace monsoon

#endif  // MONSOON_WORKLOADS_WORKLOAD_H_
