#ifndef MONSOON_WORKLOADS_UDFBENCH_H_
#define MONSOON_WORKLOADS_UDFBENCH_H_

#include "common/status.h"
#include "workloads/workload.h"

namespace monsoon {

/// The UDF benchmark of Sec. 6.2.2 (3): 25 queries whose join and
/// selection predicates go *exclusively* through UDFs, several of them
/// multi-table UDFs. The paper's suite (bitbucket.org/sikdarsourav/
/// monsoonqueries) pairs 15 IMDB-join-benchmark translations with 10
/// hard-join-order TPC-H queries; this generator mirrors that split:
///
///  * 15 document/session-style queries over synthetic text data using
///    the string UDFs from the paper's introduction (extract_id /
///    extract_author / extract_date / city_from_ip / canonical_set),
///    including the Sec. 2.1 fraudulent-order query with its
///    set-equality predicate and the '<>' residual filter;
///  * 10 TPC-H-schema queries whose keys are obscured by bucket UDFs,
///    two of which use genuinely multi-table UDF terms (pair_key over
///    attributes from two relations), which force statistics collection
///    after a join — the case On-Demand cannot handle.
struct UdfBenchOptions {
  double scale = 1.0;
  uint64_t seed = 25;
};

StatusOr<Workload> MakeUdfBenchWorkload(const UdfBenchOptions& options);

}  // namespace monsoon

#endif  // MONSOON_WORKLOADS_UDFBENCH_H_
