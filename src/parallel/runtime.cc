#include "parallel/runtime.h"

#include <algorithm>
#include <memory>

#include "common/env.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace monsoon::parallel {

namespace {

struct Runtime {
  Mutex mu;
  Config config GUARDED_BY(mu);
  std::unique_ptr<ThreadPool> pool GUARDED_BY(mu);

  Runtime() {
    config.batch_size = std::max<uint64_t>(
        1, EnvUint64("MONSOON_BATCH_SIZE", config.batch_size));
  }
};

Runtime& GlobalRuntime() {
  static Runtime* runtime = new Runtime();  // NOLINT(monsoon-raw-new): leaked singleton outlives static destruction order
  return *runtime;
}

}  // namespace

Config DefaultConfig() {
  Runtime& rt = GlobalRuntime();
  MutexLock lock(rt.mu);
  return rt.config;
}

void SetDefaultConfig(const Config& config) {
  Runtime& rt = GlobalRuntime();
  MutexLock lock(rt.mu);
  rt.config = config;
  rt.config.num_threads = std::max(1, config.num_threads);
  rt.config.morsel_size = std::max<size_t>(1, config.morsel_size);
  rt.config.batch_size = std::max<size_t>(1, config.batch_size);
  // Rebuild eagerly so the old pool's workers wind down now rather than
  // under a later query.
  if (rt.config.num_threads <= 1 || rt.config.deterministic) {
    rt.pool.reset();
  } else if (rt.pool == nullptr ||
             rt.pool->num_threads() != rt.config.num_threads) {
    rt.pool.reset();  // join old workers before spawning replacements
    rt.pool = std::make_unique<ThreadPool>(rt.config.num_threads);
  }
}

ThreadPool* SharedPool() {
  Runtime& rt = GlobalRuntime();
  MutexLock lock(rt.mu);
  return rt.pool.get();
}

int EffectiveMctsWorkers() {
  Config config = DefaultConfig();
  if (config.deterministic) return 1;
  int workers = config.mcts_workers > 0 ? config.mcts_workers : config.num_threads;
  return std::max(1, workers);
}

}  // namespace monsoon::parallel
