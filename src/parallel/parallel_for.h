#ifndef MONSOON_PARALLEL_PARALLEL_FOR_H_
#define MONSOON_PARALLEL_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "common/status.h"
#include "fault/cancellation.h"
#include "parallel/thread_pool.h"

namespace monsoon::parallel {

/// Number of morsels [0, n) splits into at the given morsel size.
inline size_t NumMorsels(size_t n, size_t morsel_size) {
  morsel_size = morsel_size == 0 ? 1 : morsel_size;
  return (n + morsel_size - 1) / morsel_size;
}

/// Morsel-driven parallel loop: splits [0, n) into chunks of `morsel_size`
/// rows and invokes fn(morsel_index, begin, end) for each, concurrently
/// when `pool` has workers and inline otherwise. Morsels are claimed from
/// a shared atomic dispenser, so fast lanes naturally take more morsels
/// (self-balancing under skew); the calling thread participates as a lane.
///
/// Error contract: if any invocation returns non-OK, unclaimed morsels are
/// skipped and the error of the lowest-indexed failing morsel is returned
/// (matching what a serial loop with short-circuiting would report when
/// the failure is monotone, e.g. a budget trip). Exceptions thrown by fn
/// propagate to the caller.
///
/// fn runs concurrently with other morsels: it may freely write state
/// indexed by its morsel number, and must not touch shared mutable state
/// without synchronization. Deterministic reductions are obtained by
/// merging per-morsel results in morsel order after this returns.
Status ParallelFor(ThreadPool* pool, size_t n, size_t morsel_size,
                   const std::function<Status(size_t, size_t, size_t)>& fn);

/// As above, additionally polling `token` at every morsel boundary (in the
/// serial fallback too, so cancellation latency does not depend on the
/// thread count). A tripped token stops every lane from claiming further
/// morsels and its Cancelled / DeadlineExceeded status is returned —
/// unless some morsel already failed, in which case the lowest-indexed
/// morsel error still wins. `token` may be null (plain ParallelFor).
Status ParallelFor(ThreadPool* pool, size_t n, size_t morsel_size,
                   fault::CancellationToken* token,
                   const std::function<Status(size_t, size_t, size_t)>& fn);

}  // namespace monsoon::parallel

#endif  // MONSOON_PARALLEL_PARALLEL_FOR_H_
