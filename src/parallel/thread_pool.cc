#include "parallel/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace monsoon::parallel {

namespace {
thread_local int tls_worker_id = -1;
}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  int workers = num_threads_ - 1;
  size_t queues = std::max(1, workers);
  queues_.reserve(queues);
  for (size_t i = 0; i < queues; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
  }
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(idle_mu_);
    shutdown_ = true;
  }
  idle_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::CurrentWorker() { return tls_worker_id; }

void ThreadPool::Submit(Task task) {
  size_t queue;
  {
    MutexLock lock(submit_mu_);
    queue = next_queue_++ % queues_.size();
  }
  SubmitTo(queue, std::move(task));
}

void ThreadPool::SubmitTo(size_t queue, Task task) {
  static obs::Counter* const submitted_metric =
      obs::Registry::Global().GetCounter("pool.tasks_submitted");
  static obs::Counter* const run_metric =
      obs::Registry::Global().GetCounter("pool.tasks_run");
  static obs::Counter* const stolen_metric =
      obs::Registry::Global().GetCounter("pool.tasks_stolen");
  static obs::Histogram* const queue_us_metric =
      obs::Registry::Global().GetHistogram("pool.queue_us");

  submitted_metric->Add(1);
  size_t home = queue % queues_.size();
  // Wrap the task with lifecycle telemetry: enqueue → dequeue latency, and
  // whether it was stolen off its home queue. The wrapper runs on the
  // claiming thread, so the TraceSpan lands on that worker's lane.
  auto enqueued = std::chrono::steady_clock::now();
  Task wrapped = [home, enqueued, inner = std::move(task)] {
    uint64_t queue_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - enqueued)
            .count());
    int runner = CurrentWorker();
    bool stolen = runner != static_cast<int>(home);
    run_metric->Add(1);
    if (stolen) stolen_metric->Add(1);
    queue_us_metric->Observe(queue_us);
    obs::TraceSpan span("pool", "task");
    span.Arg("queue_us", queue_us)
        .Arg("home", static_cast<uint64_t>(home))
        .Arg("stolen", stolen);
    inner();
  };
  WorkQueue& q = *queues_[home];
  // Account before publishing: a task is claimable the moment it is in the
  // queue, and the claimer's decrement must find the increment already
  // applied or pending_ goes negative and workers can sleep past real work.
  {
    MutexLock lock(idle_mu_);
    ++pending_;
  }
  {
    MutexLock lock(q.mu);
    q.tasks.push_back(std::move(wrapped));
  }
  idle_cv_.NotifyOne();
}

bool ThreadPool::PopOwn(size_t queue, Task* task) {
  MONSOON_DCHECK(queue < queues_.size());
  WorkQueue& q = *queues_[queue];
  MutexLock lock(q.mu);
  if (q.tasks.empty()) return false;
  *task = std::move(q.tasks.back());
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::StealFrom(size_t victim, Task* task) {
  MONSOON_DCHECK(victim < queues_.size());
  WorkQueue& q = *queues_[victim];
  MutexLock lock(q.mu);
  if (q.tasks.empty()) return false;
  *task = std::move(q.tasks.front());
  q.tasks.pop_front();
  return true;
}

bool ThreadPool::FindTask(size_t home, Task* task) {
  size_t n = queues_.size();
  if (home < n && PopOwn(home, task)) return true;
  for (size_t i = 0; i < n; ++i) {
    size_t victim = (home + 1 + i) % n;
    if (StealFrom(victim, task)) return true;
  }
  return false;
}

bool ThreadPool::TryRunOne() {
  Task task;
  size_t home = tls_worker_id >= 0 ? static_cast<size_t>(tls_worker_id)
                                   : queues_.size();  // externals only steal
  if (!FindTask(home, &task)) return false;
  {
    MutexLock lock(idle_mu_);
    MONSOON_DCHECK(pending_ > 0) << "claimed a task nobody accounted for";
    --pending_;
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop(int worker_id) {
  tls_worker_id = worker_id;
  obs::SetThreadDefaultLane(obs::kPoolLaneBase + worker_id,
                            "pool-w" + std::to_string(worker_id));
  for (;;) {
    Task task;
    if (FindTask(static_cast<size_t>(worker_id), &task)) {
      {
        MutexLock lock(idle_mu_);
        MONSOON_DCHECK(pending_ > 0) << "claimed a task nobody accounted for";
        --pending_;
      }
      task();
      continue;
    }
    MutexLock lock(idle_mu_);
    while (!shutdown_ && pending_ == 0) idle_cv_.Wait(idle_mu_);
    if (shutdown_ && pending_ == 0) return;
  }
}

TaskGroup::~TaskGroup() {
  // A group abandoned without Wait() would let tasks touch a dead frame;
  // draining here keeps misuse from turning into memory corruption.
  bool outstanding;
  {
    MutexLock lock(mu_);
    outstanding = outstanding_ > 0;
  }
  if (outstanding) Wait();
}

void TaskGroup::Execute(const std::function<void()>& fn) {
  try {
    fn();
  } catch (...) {
    {
      MutexLock lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    // Cancel outside mu_: token Cancel is lock-free but keeping the
    // group lock narrow avoids ordering it against token internals.
    if (token_ != nullptr) {
      token_->Cancel(StatusCode::kCancelled, "sibling task failed");
    }
  }
}

std::function<void()> TaskGroup::Wrap(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    ++outstanding_;
  }
  return [this, fn = std::move(fn)] {
    Execute(fn);
    // Notify while holding mu_: once a waiter can observe outstanding_ == 0
    // it may destroy this group, so the broadcast must finish before the
    // lock is released. Notifying after unlock races with ~TaskGroup.
    MutexLock lock(mu_);
    MONSOON_DCHECK(outstanding_ > 0) << "task completion without a Wrap";
    if (--outstanding_ == 0) cv_.NotifyAll();
  };
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->num_workers() == 0) {
    Execute(fn);
    return;
  }
  pool_->Submit(Wrap(std::move(fn)));
}

void TaskGroup::RunOn(size_t queue, std::function<void()> fn) {
  if (pool_ == nullptr || pool_->num_workers() == 0) {
    Execute(fn);
    return;
  }
  pool_->SubmitTo(queue, Wrap(std::move(fn)));
}

void TaskGroup::Wait() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (outstanding_ == 0) break;
    }
    // Help: run queued pool tasks (ours or anyone's) instead of blocking.
    // Nested Wait() calls on worker threads make progress the same way,
    // which is what makes nested TaskGroups deadlock-free.
    if (pool_ != nullptr && pool_->TryRunOne()) continue;
    MutexLock lock(mu_);
    if (outstanding_ == 0) break;
    // Re-poll for stealable tasks periodically: a task submitted after the
    // TryRunOne miss but claimed by no one must not strand us here.
    cv_.WaitFor(mu_, std::chrono::milliseconds(1));
    if (outstanding_ == 0) break;
  }
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace monsoon::parallel
