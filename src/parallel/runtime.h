#ifndef MONSOON_PARALLEL_RUNTIME_H_
#define MONSOON_PARALLEL_RUNTIME_H_

#include <cstddef>

#include "parallel/thread_pool.h"

namespace monsoon::parallel {

/// Process-wide parallel execution knobs. Every ExecContext snapshots the
/// default config at construction, so one SetDefaultConfig call at startup
/// (e.g. from --threads=N / MONSOON_THREADS) flips every strategy —
/// Monsoon and all baselines — to the same concurrency level.
struct Config {
  /// Total threads per query (caller included). 1 = serial.
  int num_threads = 1;
  /// Rows per morsel for morsel-driven operators. The default keeps a
  /// morsel's working set (a few thousand Values plus output rows) inside
  /// L2 while leaving enough morsels for stealing to balance skew; see
  /// DESIGN.md "Parallel runtime".
  size_t morsel_size = 2048;
  /// Rows per batch for the vectorized executor pipeline (DESIGN.md §12).
  /// 1 selects the legacy row-at-a-time strategy (same operators driven
  /// with degenerate batches — the seed executor's behavior, kept as the
  /// equivalence/ablation baseline). Morsel boundaries are always batch
  /// boundaries: batches chunk within a morsel and the final short batch
  /// ends at the morsel edge, where cancellation was already polled.
  /// Initialized from MONSOON_BATCH_SIZE (default 1024); an explicit
  /// --batch-size=N flag wins over the environment (common/env.h rule).
  size_t batch_size = 1024;
  /// Debug escape hatch: run every parallel construct inline on the
  /// calling thread, regardless of num_threads. Results are identical
  /// either way (merges are ordered and HLL/visit merges are exact); the
  /// flag only removes the scheduler from the picture.
  bool deterministic = false;
  /// Root-parallel MCTS searchers per decision; 0 = num_threads.
  int mcts_workers = 0;
};

/// The current process-wide default (thread-safe snapshot).
Config DefaultConfig();

/// Replaces the default config and rebuilds the shared pool to match.
/// Call while no query is executing (startup / between bench runs);
/// ExecContexts created before the call keep the old pool.
void SetDefaultConfig(const Config& config);

/// The process-wide pool sized per DefaultConfig(). Returns nullptr when
/// the config implies serial execution (num_threads <= 1 or
/// deterministic), which every consumer treats as "run inline".
ThreadPool* SharedPool();

/// Effective root-parallel MCTS worker count from the default config.
int EffectiveMctsWorkers();

}  // namespace monsoon::parallel

#endif  // MONSOON_PARALLEL_RUNTIME_H_
