#include "parallel/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/check.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace monsoon::parallel {

Status ParallelFor(ThreadPool* pool, size_t n, size_t morsel_size,
                   const std::function<Status(size_t, size_t, size_t)>& fn) {
  return ParallelFor(pool, n, morsel_size, /*token=*/nullptr, fn);
}

Status ParallelFor(ThreadPool* pool, size_t n, size_t morsel_size,
                   fault::CancellationToken* token,
                   const std::function<Status(size_t, size_t, size_t)>& fn) {
  if (n == 0) return Status::OK();
  morsel_size = std::max<size_t>(1, morsel_size);
  size_t num_morsels = NumMorsels(n, morsel_size);

  if (pool == nullptr || pool->num_workers() == 0 || num_morsels <= 1) {
    for (size_t i = 0; i < num_morsels; ++i) {
      if (token != nullptr) MONSOON_RETURN_IF_ERROR(token->Check());
      size_t begin = i * morsel_size;
      size_t end = std::min(n, begin + morsel_size);
      MONSOON_RETURN_IF_ERROR(fn(i, begin, end));
    }
    return Status::OK();
  }

  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    Mutex mu;
    size_t error_index GUARDED_BY(mu) = std::numeric_limits<size_t>::max();
    Status error GUARDED_BY(mu);
  };
  Shared shared;

  auto lane = [&shared, &fn, token, n, morsel_size, num_morsels] {
    for (;;) {
      if (shared.failed.load(std::memory_order_relaxed)) return;
      if (token != nullptr && !token->Check().ok()) return;
      size_t i = shared.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_morsels) return;
      size_t begin = i * morsel_size;
      size_t end = std::min(n, begin + morsel_size);
      MONSOON_DCHECK(begin < end && end <= n)
          << "morsel " << i << " out of [0, " << n << ")";
      Status status = fn(i, begin, end);
      if (!status.ok()) {
        MutexLock lock(shared.mu);
        if (i < shared.error_index) {
          shared.error_index = i;
          shared.error = std::move(status);
        }
        shared.failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  size_t lanes = std::min<size_t>(static_cast<size_t>(pool->num_threads()),
                                  num_morsels);
  TaskGroup group(pool);
  for (size_t k = 1; k < lanes; ++k) group.Run(lane);
  lane();  // the calling thread is a lane too
  group.Wait();

  {
    MutexLock lock(shared.mu);
    if (shared.error_index != std::numeric_limits<size_t>::max()) {
      return shared.error;
    }
  }
  // No morsel failed, but the token may have tripped mid-loop and left
  // morsels unclaimed; surface that instead of returning a partial OK.
  if (token != nullptr && token->cancelled()) return token->Check();
  return Status::OK();
}

}  // namespace monsoon::parallel
