#ifndef MONSOON_PARALLEL_THREAD_POOL_H_
#define MONSOON_PARALLEL_THREAD_POOL_H_

#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"
#include "fault/cancellation.h"

namespace monsoon::parallel {

/// A work-stealing thread pool. Each worker owns a deque: it pushes and
/// pops its own tasks at the back (LIFO, cache-friendly) and steals from
/// the *front* of other workers' deques (FIFO, takes the oldest — and for
/// morsel-driven loops typically the largest remaining — task). External
/// submitters distribute round-robin across the worker deques.
///
/// `num_threads` is the total concurrency level *including the calling
/// thread*: the pool spawns num_threads - 1 workers, and the caller is
/// expected to lend itself via TaskGroup::Wait / ParallelFor, which both
/// execute queued tasks inline while waiting. num_threads <= 1 spawns no
/// workers at all; TaskGroup then degenerates to inline execution.
///
/// Tasks must not block indefinitely on other pool tasks except through
/// TaskGroup::Wait (which helps drain the pool, so nested groups cannot
/// deadlock).
class ThreadPool {
 public:
  using Task = std::function<void()>;

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency level (workers + the caller slot).
  int num_threads() const { return num_threads_; }
  /// Background workers actually spawned (num_threads - 1, min 0).
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task on the next deque (round robin).
  void Submit(Task task);

  /// Enqueues a task on a specific worker's deque (tests use this to
  /// provoke stealing; `queue` is taken modulo the queue count).
  void SubmitTo(size_t queue, Task task);

  /// Runs one queued task on the calling thread if any is available
  /// (steals from the front of the first non-empty deque). Returns false
  /// when every deque is empty.
  bool TryRunOne();

  /// Queued-but-unclaimed tasks. 0 once the pool is drained — the fault
  /// tests use this to assert cancelled parallel sections leak no tasks.
  size_t pending_tasks() {
    MutexLock lock(idle_mu_);
    return pending_;
  }

  /// Worker index of the calling thread, or -1 for external threads.
  /// Distinct per pool worker; stable for the worker's lifetime.
  static int CurrentWorker();

 private:
  struct WorkQueue {
    Mutex mu;
    std::deque<Task> tasks GUARDED_BY(mu);
  };

  void WorkerLoop(int worker_id);
  bool PopOwn(size_t queue, Task* task);
  bool StealFrom(size_t victim, Task* task);
  /// Scans all queues starting at `home + 1`; false if all empty.
  bool FindTask(size_t home, Task* task);

  int num_threads_;
  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake machinery: `pending_` counts queued-but-unclaimed tasks.
  Mutex idle_mu_;
  CondVar idle_cv_;
  size_t pending_ GUARDED_BY(idle_mu_) = 0;
  bool shutdown_ GUARDED_BY(idle_mu_) = false;

  Mutex submit_mu_;
  size_t next_queue_ GUARDED_BY(submit_mu_) = 0;
};

/// A set of tasks whose completion is awaited together. Exceptions thrown
/// by tasks are captured and the *first* one is rethrown from Wait(), so
/// parallel sections keep the repo's error contract at the boundary
/// (callers convert to Status; see ParallelFor).
///
/// When constructed with a CancellationToken, the first captured failure
/// also cancels the token, so sibling tasks polling it stop claiming work
/// instead of running to completion (first-error-wins: the rethrown
/// exception is still the first one captured, which under a seeded fault
/// spec is the same failure at every thread count).
///
/// With a null pool (or a pool with no workers) Run() executes inline on
/// the calling thread, making serial mode structurally identical to the
/// parallel path.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool, fault::CancellationToken* token = nullptr)
      : pool_(pool), token_(token) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules fn; inline when the pool cannot run it in the background.
  void Run(std::function<void()> fn);

  /// As Run, but pinned to worker `queue`'s deque (stealing tests).
  void RunOn(size_t queue, std::function<void()> fn);

  /// Blocks until every task scheduled through this group finished. The
  /// calling thread executes queued pool tasks while it waits. Rethrows
  /// the first captured exception.
  void Wait();

 private:
  std::function<void()> Wrap(std::function<void()> fn);
  void Execute(const std::function<void()>& fn);

  ThreadPool* pool_;
  fault::CancellationToken* token_;
  Mutex mu_;
  CondVar cv_;
  int outstanding_ GUARDED_BY(mu_) = 0;
  std::exception_ptr error_ GUARDED_BY(mu_);
};

}  // namespace monsoon::parallel

#endif  // MONSOON_PARALLEL_THREAD_POOL_H_
