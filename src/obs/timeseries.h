#ifndef MONSOON_OBS_TIMESERIES_H_
#define MONSOON_OBS_TIMESERIES_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace monsoon::obs {

/// Windowed time-series over the metrics registry: a fixed-capacity ring
/// of periodic MetricsSnapshot deltas. A sampler (driven externally — the
/// server runs one as a long-lived pool task; see MetricsSampler) appends
/// one slot per tick; readers merge the newest slots covering the last N
/// seconds into a WindowSummary. Because histogram deltas merge by plain
/// element-wise addition (fixed log2 buckets), window percentiles are
/// exact over the merged samples — no sketch error on top of the bucket
/// resolution.
///
/// The ring never touches the metric hot paths: Counter::Add and
/// Histogram::Observe are unchanged, and with no sampler running the
/// subsystem costs nothing. Record/Window copy snapshot maps under a
/// dedicated unranked mutex (never held across pool work or I/O).

/// Percentile estimate from a log2-bucket histogram: finds the bucket
/// containing the q-th ranked sample and interpolates linearly inside its
/// [lower, upper) value range. Exact for bucket boundaries; at most one
/// bucket's width of error inside. `q` in [0, 1]; 0 samples -> 0.
double HistogramPercentile(const HistogramSnapshot& snap, double q);

/// Merge of the ring slots covering a trailing window.
struct WindowSummary {
  /// Slots merged (0 when the sampler has not ticked yet).
  size_t slots = 0;
  /// Wall time actually covered (sum of slot intervals; may be shorter
  /// than requested while the ring warms up).
  double window_seconds = 0;
  /// Counter / histogram deltas summed over the window; gauges hold the
  /// newest slot's instantaneous value.
  MetricsSnapshot delta;

  /// Counter delta over the window (0 when absent).
  uint64_t CounterDelta(const std::string& name) const;
  /// CounterDelta / window_seconds (0 when the window is empty).
  double Rate(const std::string& name) const;
  /// Merged histogram delta, or nullptr when absent.
  const HistogramSnapshot* Histogram(const std::string& name) const;
  /// HistogramPercentile of the named merged histogram (0 when absent).
  double Percentile(const std::string& name, double q) const;
};

class TimeSeriesRing {
 public:
  /// `capacity` slots; at the server's default 250ms tick, 256 slots hold
  /// just over a minute of history.
  explicit TimeSeriesRing(size_t capacity = 256);

  TimeSeriesRing(const TimeSeriesRing&) = delete;
  TimeSeriesRing& operator=(const TimeSeriesRing&) = delete;

  /// Appends one slot: `delta` covers the `interval_seconds` ending now.
  /// The oldest slot is overwritten when the ring is full.
  void Record(double interval_seconds, MetricsSnapshot delta);

  /// Merges the newest slots whose intervals sum to at least `seconds`
  /// (fewer while warming up).
  WindowSummary Window(double seconds) const;

  /// Drops every slot and resets the tick count, returning the ring to its
  /// just-constructed state. Used when a stopped sampler restarts: stale
  /// buckets from the previous sampling epoch must not bleed into the new
  /// window (their intervals no longer abut the new ticks).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Total slots ever recorded (ticks), including overwritten ones.
  uint64_t ticks() const;

 private:
  struct Slot {
    double interval_seconds = 0;
    MetricsSnapshot delta;
  };

  const size_t capacity_;
  mutable Mutex ring_mu_;
  std::vector<Slot> slots_ GUARDED_BY(ring_mu_);
  size_t next_ GUARDED_BY(ring_mu_) = 0;
  uint64_t ticks_ GUARDED_BY(ring_mu_) = 0;
};

/// Turns registry snapshots into ring slots. SampleOnce diffs the global
/// registry against the previous sample and records the delta with the
/// measured inter-tick interval; the first call primes the baseline and
/// records nothing. Drive it from any single thread or task — the server
/// runs `while (!stop) { SampleOnce(); wait(interval); }` as a pool task
/// (src/obs stays free of std::thread per the monsoon-thread rule).
class MetricsSampler {
 public:
  explicit MetricsSampler(TimeSeriesRing* ring) : ring_(ring) {}

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Snapshot + diff + record. Not thread-safe: one driver at a time.
  void SampleOnce();

  /// Forgets the primed baseline so the next SampleOnce re-primes instead
  /// of recording a delta spanning the stopped gap. Call together with
  /// TimeSeriesRing::Clear when restarting a stopped sampler.
  void Reset();

 private:
  TimeSeriesRing* ring_;
  bool primed_ = false;
  MetricsSnapshot last_;
  std::chrono::steady_clock::time_point last_time_;
};

}  // namespace monsoon::obs

#endif  // MONSOON_OBS_TIMESERIES_H_
