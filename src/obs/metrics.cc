#include "obs/metrics.h"

#include "common/check.h"

namespace monsoon::obs {

namespace internal {

namespace {
std::atomic<size_t> g_next_shard{0};
}  // namespace

size_t ThreadShard() {
  thread_local size_t slot =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace internal

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kHistogramBuckets, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    auto it = before.counters.find(name);
    uint64_t prev = it == before.counters.end() ? 0 : it->second;
    if (value != prev) delta.counters[name] = value - prev;
  }
  delta.gauges = after.gauges;
  for (const auto& [name, snap] : after.histograms) {
    auto it = before.histograms.find(name);
    if (it == before.histograms.end()) {
      if (snap.count != 0) delta.histograms[name] = snap;
      continue;
    }
    const HistogramSnapshot& prev = it->second;
    if (snap.count == prev.count) continue;
    HistogramSnapshot d;
    d.count = snap.count - prev.count;
    d.sum = snap.sum - prev.sum;
    d.buckets.assign(kHistogramBuckets, 0);
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      uint64_t p = i < prev.buckets.size() ? prev.buckets[i] : 0;
      d.buckets[i] = snap.buckets[i] - p;
    }
    delta.histograms[name] = std::move(d);
  }
  return delta;
}

Registry& Registry::Global() {
  static Registry* const global =
      new Registry();  // NOLINT(monsoon-raw-new): leaked singleton
  return *global;
}

Counter* Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  MONSOON_CHECK(!gauges_.count(name) && !histograms_.count(name))
      << "metric '" << name << "' already registered as a different kind";
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  MONSOON_CHECK(!counters_.count(name) && !histograms_.count(name))
      << "metric '" << name << "' already registered as a different kind";
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  MONSOON_CHECK(!counters_.count(name) && !gauges_.count(name))
      << "metric '" << name << "' already registered as a different kind";
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  return snap;
}

}  // namespace monsoon::obs
