#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace monsoon::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue* JsonValue::FindMutable(const std::string& key) {
  if (kind != Kind::kObject) return nullptr;
  for (auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::Serialize() const {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_value ? "true" : "false";
    case Kind::kNumber:
      if (!number_text.empty()) return number_text;
      return StrFormat("%.17g", number);
    case Kind::kString:
      return "\"" + JsonEscape(string_value) + "\"";
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out += ",";
        out += array[i].Serialize();
      }
      out += "]";
      return out;
    }
    case Kind::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < object.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + JsonEscape(object[i].first) + "\":";
        out += object[i].second.Serialize();
      }
      out += "}";
      return out;
    }
  }
  return "null";
}

namespace {

/// Recursive-descent parser over a raw character range.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    MONSOON_ASSIGN_OR_RETURN(JsonValue value, ParseValue(/*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the top-level value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    JsonValue value;
    char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      MONSOON_ASSIGN_OR_RETURN(value.string_value, ParseString());
      value.kind = JsonValue::Kind::kString;
      return value;
    }
    if (ConsumeWord("null")) return value;
    if (ConsumeWord("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.bool_value = true;
      return value;
    }
    if (ConsumeWord("false")) {
      value.kind = JsonValue::Kind::kBool;
      value.bool_value = false;
      return value;
    }
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    Consume('{');
    SkipWhitespace();
    if (Consume('}')) return value;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a string key");
      }
      MONSOON_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      MONSOON_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      value.object.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    Consume('[');
    SkipWhitespace();
    if (Consume(']')) return value;
    for (;;) {
      MONSOON_ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      value.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          MONSOON_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          // Combine a surrogate pair when one follows; otherwise keep the
          // unit as-is (lone surrogates encode like any other code point).
          if (code >= 0xd800 && code <= 0xdbff &&
              text_.compare(pos_, 2, "\\u") == 0) {
            size_t saved = pos_;
            pos_ += 2;
            StatusOr<uint32_t> low = ParseHex4();
            if (low.ok() && *low >= 0xdc00 && *low <= 0xdfff) {
              code = 0x10000 + ((code - 0xd800) << 10) + (*low - 0xdc00);
            } else {
              pos_ = saved;
            }
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xc0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xe0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      *out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      *out += static_cast<char>(0xf0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      *out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Error("expected a value");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(token.c_str(), nullptr);
    value.number_text = std::move(token);
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonParse(const std::string& text) {
  return Parser(text).Parse();
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ << ",";
    first_.back() = false;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ << "{";
  first_.push_back(true);
}

void JsonWriter::EndObject() {
  first_.pop_back();
  out_ << "}";
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ << "[";
  first_.push_back(true);
}

void JsonWriter::EndArray() {
  first_.pop_back();
  out_ << "]";
}

void JsonWriter::Key(const std::string& key) {
  if (!first_.empty()) {
    if (!first_.back()) out_ << ",";
    first_.back() = false;
  }
  out_ << "\"" << JsonEscape(key) << "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ << "\"" << JsonEscape(value) << "\"";
}

void JsonWriter::Raw(const std::string& json_text) {
  BeforeValue();
  out_ << json_text;
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ << value;
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ << value;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  out_ << StrFormat("%.17g", value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  out_ << "null";
}

void JsonWriter::KV(const std::string& key, const std::string& value) {
  Key(key);
  String(value);
}

void JsonWriter::KV(const std::string& key, const char* value) {
  Key(key);
  String(value);
}

void JsonWriter::KV(const std::string& key, int64_t value) {
  Key(key);
  Int(value);
}

void JsonWriter::KV(const std::string& key, uint64_t value) {
  Key(key);
  Uint(value);
}

void JsonWriter::KV(const std::string& key, int value) {
  Key(key);
  Int(value);
}

void JsonWriter::KV(const std::string& key, double value) {
  Key(key);
  Double(value);
}

void JsonWriter::KV(const std::string& key, bool value) {
  Key(key);
  Bool(value);
}

}  // namespace monsoon::obs
