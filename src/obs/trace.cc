#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "common/check.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "obs/json.h"

namespace monsoon::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

struct TraceEvent {
  const char* category;
  const char* name;
  int lane;
  uint64_t span_id;
  uint64_t seq;
  uint64_t ts_us;
  uint64_t dur_us;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Per-thread event buffer. The owning thread appends under the buffer's
/// own mutex (uncontended except during a drain); StopTracing locks each
/// buffer to collect. `bmu` is deliberately not in tools/lint/lock_ranks.h:
/// it nests only inside the tracer mutex and never wraps other locks.
struct ThreadBuffer {
  Mutex bmu;
  std::vector<TraceEvent> events GUARDED_BY(bmu);
};

/// Per-lane id stream. A lane has a single owning thread at any moment
/// (main, one MCTS worker task, or one pool worker), so rng/seq are
/// mutated without a lock; StartTracing's reset is published by the
/// release store on the enabled flag.
struct LaneState {
  Pcg32 rng;
  uint64_t seq = 0;
};

thread_local int tls_lane = -1;

class Tracer {
 public:
  static Tracer& Global() {
    static Tracer* const global =
        new Tracer();  // NOLINT(monsoon-raw-new): leaked singleton
    return *global;
  }

  Mutex tracer_mu;
  bool active GUARDED_BY(tracer_mu) = false;
  std::string path GUARDED_BY(tracer_mu);
  uint64_t seed GUARDED_BY(tracer_mu) = 0;
  std::string lane_names[kNumLanes] GUARDED_BY(tracer_mu);
  std::vector<std::unique_ptr<ThreadBuffer>> buffers GUARDED_BY(tracer_mu);
  std::vector<TraceEvent> orphans GUARDED_BY(tracer_mu);

  /// Start-of-trace epoch; written before the enabled flag's release
  /// store, read by every span after its acquire load.
  std::chrono::steady_clock::time_point t0;
  LaneState lanes[kNumLanes];
  std::atomic<int> next_external{kExternalLaneBase};

  ThreadBuffer* RegisterBuffer() {
    MutexLock lock(tracer_mu);
    buffers.push_back(std::make_unique<ThreadBuffer>());
    return buffers.back().get();
  }

  void ReleaseBuffer(ThreadBuffer* buffer) {
    MutexLock lock(tracer_mu);
    for (size_t i = 0; i < buffers.size(); ++i) {
      if (buffers[i].get() != buffer) continue;
      {
        MutexLock buffer_lock(buffer->bmu);
        for (TraceEvent& ev : buffer->events) {
          orphans.push_back(std::move(ev));
        }
      }
      buffers.erase(buffers.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }

  void SetLaneName(int lane, const std::string& name) {
    MutexLock lock(tracer_mu);
    lane_names[lane] = name;
  }

 private:
  Tracer() = default;
};

/// Owns this thread's registration; thread exit moves any still-buffered
/// events into the tracer's orphan list so they survive into the file.
struct BufferHandle {
  ThreadBuffer* buffer = nullptr;
  ~BufferHandle() {
    if (buffer != nullptr) Tracer::Global().ReleaseBuffer(buffer);
  }
};

thread_local BufferHandle tls_buffer;

ThreadBuffer* CurrentBuffer() {
  if (tls_buffer.buffer == nullptr) {
    tls_buffer.buffer = Tracer::Global().RegisterBuffer();
  }
  return tls_buffer.buffer;
}

int ClampLane(int lane) {
  if (lane < 0) return 0;
  if (lane >= kNumLanes) return kNumLanes - 1;
  return lane;
}

/// Lane for the current thread, assigning an external lane on first use.
int CurrentLane() {
  if (tls_lane >= 0) return tls_lane;
  Tracer& tracer = Tracer::Global();
  int lane =
      ClampLane(tracer.next_external.fetch_add(1, std::memory_order_relaxed));
  tracer.SetLaneName(lane, StrFormat("ext-%d", lane - kExternalLaneBase));
  tls_lane = lane;
  return lane;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Tracer::Global().t0)
          .count());
}

void StopTracingAtExit() {
  // Process teardown: nowhere to report a flush failure, drop it.
  Status flush = StopTracing();
  (void)flush;
}

}  // namespace

void SetThreadDefaultLane(int lane, const std::string& name) {
  lane = ClampLane(lane);
  tls_lane = lane;
  Tracer::Global().SetLaneName(lane, name);
}

TraceLaneScope::TraceLaneScope(int lane, const std::string& name)
    : saved_lane_(tls_lane) {
  lane = ClampLane(lane);
  tls_lane = lane;
  if (TracingEnabled()) Tracer::Global().SetLaneName(lane, name);
}

TraceLaneScope::~TraceLaneScope() { tls_lane = saved_lane_; }

Status StartTracing(const std::string& path, uint64_t seed) {
  Tracer& tracer = Tracer::Global();
  MutexLock lock(tracer.tracer_mu);
  if (tracer.active) {
    return Status::AlreadyExists("tracing is already active (" + tracer.path +
                                 ")");
  }
  tracer.path = path;
  tracer.seed = seed;
  tracer.t0 = std::chrono::steady_clock::now();
  for (int lane = 0; lane < kNumLanes; ++lane) {
    tracer.lanes[lane].rng = Pcg32(seed + static_cast<uint64_t>(lane));
    tracer.lanes[lane].seq = 0;
  }
  if (tracer.lane_names[kMainLane].empty()) {
    tracer.lane_names[kMainLane] = "main";
  }
  for (const auto& buffer : tracer.buffers) {
    MutexLock buffer_lock(buffer->bmu);
    buffer->events.clear();
  }
  tracer.orphans.clear();
  if (tls_lane < 0) tls_lane = kMainLane;

  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit(StopTracingAtExit);
  }

  tracer.active = true;
  internal::g_trace_enabled.store(true, std::memory_order_release);
  return Status::OK();
}

Status StopTracing() {
  Tracer& tracer = Tracer::Global();
  MutexLock lock(tracer.tracer_mu);
  if (!tracer.active) return Status::OK();
  internal::g_trace_enabled.store(false, std::memory_order_release);
  tracer.active = false;

  std::vector<TraceEvent> events;
  for (const auto& buffer : tracer.buffers) {
    MutexLock buffer_lock(buffer->bmu);
    for (TraceEvent& ev : buffer->events) {
      events.push_back(std::move(ev));
    }
    buffer->events.clear();
  }
  for (TraceEvent& ev : tracer.orphans) {
    events.push_back(std::move(ev));
  }
  tracer.orphans.clear();

  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.lane != b.lane) return a.lane < b.lane;
                     return a.seq < b.seq;
                   });

  std::ofstream out(tracer.path);
  if (!out) {
    return Status::Internal("cannot open trace file: " + tracer.path);
  }

  bool lane_used[kNumLanes] = {};
  lane_used[kMainLane] = true;
  for (const TraceEvent& ev : events) lane_used[ev.lane] = true;

  JsonWriter writer(out);
  writer.BeginObject();
  writer.Key("traceEvents");
  writer.BeginArray();
  writer.BeginObject();
  writer.KV("name", "process_name");
  writer.KV("ph", "M");
  writer.KV("pid", 1);
  writer.Key("args");
  writer.BeginObject();
  writer.KV("name", "monsoon");
  writer.EndObject();
  writer.EndObject();
  for (int lane = 0; lane < kNumLanes; ++lane) {
    if (!lane_used[lane]) continue;
    writer.BeginObject();
    writer.KV("name", "thread_name");
    writer.KV("ph", "M");
    writer.KV("pid", 1);
    writer.KV("tid", lane);
    writer.Key("args");
    writer.BeginObject();
    std::string name = tracer.lane_names[lane];
    if (name.empty()) name = StrFormat("lane-%d", lane);
    writer.KV("name", name);
    writer.EndObject();
    writer.EndObject();
  }
  for (const TraceEvent& ev : events) {
    writer.BeginObject();
    writer.KV("name", ev.name);
    writer.KV("cat", ev.category);
    writer.KV("ph", "X");
    writer.KV("pid", 1);
    writer.KV("tid", ev.lane);
    writer.KV("ts", ev.ts_us);
    writer.KV("dur", ev.dur_us);
    writer.Key("args");
    writer.BeginObject();
    writer.KV("span_id", StrFormat("0x%016llx",
                                   static_cast<unsigned long long>(ev.span_id)));
    writer.KV("seq", ev.seq);
    for (const auto& [key, json_text] : ev.args) {
      writer.Key(key);
      writer.Raw(json_text);
    }
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();
  writer.KV("displayTimeUnit", "ms");
  writer.Key("otherData");
  writer.BeginObject();
  writer.KV("seed", tracer.seed);
  writer.EndObject();
  writer.EndObject();
  out << "\n";
  out.flush();
  if (!out) {
    return Status::Internal("failed writing trace file: " + tracer.path);
  }
  return Status::OK();
}

bool MaybeStartTracingFromEnv() {
  if (TracingEnabled()) return false;
  const char* path = std::getenv("MONSOON_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  uint64_t seed = kDefaultTraceSeed;
  if (const char* seed_env = std::getenv("MONSOON_TRACE_SEED")) {
    seed = std::strtoull(seed_env, nullptr, 10);
  }
  return StartTracing(path, seed).ok();
}

TraceSpan::TraceSpan(const char* category, const char* name) {
  enabled_ = TracingEnabled();
  if (!enabled_) return;
  category_ = category;
  name_ = name;
  lane_ = CurrentLane();
  LaneState& lane_state = Tracer::Global().lanes[lane_];
  span_id_ = (static_cast<uint64_t>(lane_state.rng.Next()) << 32) |
             lane_state.rng.Next();
  seq_ = ++lane_state.seq;
  start_us_ = NowUs();
}

void TraceSpan::End() {
  if (!enabled_) return;
  enabled_ = false;
  TraceEvent ev;
  ev.category = category_;
  ev.name = name_;
  ev.lane = lane_;
  ev.span_id = span_id_;
  ev.seq = seq_;
  ev.ts_us = start_us_;
  uint64_t end_us = NowUs();
  ev.dur_us = end_us >= start_us_ ? end_us - start_us_ : 0;
  ev.args = std::move(args_);
  ThreadBuffer* buffer = CurrentBuffer();
  MutexLock lock(buffer->bmu);
  buffer->events.push_back(std::move(ev));
}

TraceSpan& TraceSpan::Arg(const char* key, int64_t value) {
  if (enabled_) {
    args_.emplace_back(key, StrFormat("%lld", static_cast<long long>(value)));
  }
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, uint64_t value) {
  if (enabled_) {
    args_.emplace_back(key,
                       StrFormat("%llu", static_cast<unsigned long long>(value)));
  }
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, int value) {
  return Arg(key, static_cast<int64_t>(value));
}

TraceSpan& TraceSpan::Arg(const char* key, double value) {
  if (enabled_) args_.emplace_back(key, StrFormat("%.17g", value));
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, bool value) {
  if (enabled_) args_.emplace_back(key, value ? "true" : "false");
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, const char* value) {
  // Checked here too (not just in the string overload) so the disabled
  // path never materializes a std::string for long literals.
  if (enabled_) return Arg(key, std::string(value));
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, const std::string& value) {
  if (enabled_) {
    std::string quoted;
    quoted.reserve(value.size() + 2);
    quoted += '"';
    quoted += JsonEscape(value);
    quoted += '"';
    args_.emplace_back(key, std::move(quoted));
  }
  return *this;
}

}  // namespace monsoon::obs
