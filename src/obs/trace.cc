#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "common/check.h"
#include "common/env.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "obs/json.h"

namespace monsoon::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_tail_mode{false};
}  // namespace internal

namespace {

struct TraceEvent {
  const char* category;
  const char* name;
  int lane;
  uint64_t span_id;
  uint64_t seq;
  uint64_t ts_us;
  uint64_t dur_us;
  /// BeginQueryTrace scope the event was recorded under; 0 outside any
  /// scope. Only consulted in tail mode.
  uint64_t query_serial = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Rough in-memory footprint, charged against the tail byte budget.
size_t ApproxEventBytes(const TraceEvent& ev) {
  size_t bytes = sizeof(TraceEvent);
  for (const auto& [key, value] : ev.args) bytes += key.size() + value.size();
  return bytes;
}

/// Per-thread event buffer. The owning thread appends under the buffer's
/// own mutex (uncontended except during a drain); StopTracing locks each
/// buffer to collect. `bmu` is deliberately not in tools/lint/lock_ranks.h:
/// it nests only inside the tracer mutex and never wraps other locks.
struct ThreadBuffer {
  Mutex bmu;
  std::vector<TraceEvent> events GUARDED_BY(bmu);
};

/// Per-lane id stream. A lane has a single owning thread at any moment
/// (main, one MCTS worker task, or one pool worker), so rng/seq are
/// mutated without a lock; StartTracing's reset is published by the
/// release store on the enabled flag.
struct LaneState {
  Pcg32 rng;
  uint64_t seq = 0;
};

thread_local int tls_lane = -1;
/// Active BeginQueryTrace scope for this thread; 0 = none.
thread_local uint64_t tls_query_serial = 0;

class Tracer {
 public:
  static Tracer& Global() {
    static Tracer* const global =
        new Tracer();  // NOLINT(monsoon-raw-new): leaked singleton
    return *global;
  }

  Mutex tracer_mu;
  bool active GUARDED_BY(tracer_mu) = false;
  std::string path GUARDED_BY(tracer_mu);
  uint64_t seed GUARDED_BY(tracer_mu) = 0;
  std::string lane_names[kNumLanes] GUARDED_BY(tracer_mu);
  std::vector<std::unique_ptr<ThreadBuffer>> buffers GUARDED_BY(tracer_mu);
  std::vector<TraceEvent> orphans GUARDED_BY(tracer_mu);

  /// Tail-sampling state (StartTailSampling). The atomics are read on the
  /// span fast path without the mutex; dir/slow_us only change under it.
  std::string tail_dir GUARDED_BY(tracer_mu);
  uint64_t tail_slow_us GUARDED_BY(tracer_mu) = 0;
  std::atomic<size_t> tail_byte_budget{0};
  std::atomic<size_t> tail_bytes{0};
  std::atomic<uint64_t> tail_dropped{0};
  std::atomic<uint64_t> next_query_serial{0};

  /// Start-of-trace epoch; written before the enabled flag's release
  /// store, read by every span after its acquire load.
  std::chrono::steady_clock::time_point t0;
  LaneState lanes[kNumLanes];
  std::atomic<int> next_external{kExternalLaneBase};

  ThreadBuffer* RegisterBuffer() {
    MutexLock lock(tracer_mu);
    buffers.push_back(std::make_unique<ThreadBuffer>());
    return buffers.back().get();
  }

  void ReleaseBuffer(ThreadBuffer* buffer) {
    MutexLock lock(tracer_mu);
    for (size_t i = 0; i < buffers.size(); ++i) {
      if (buffers[i].get() != buffer) continue;
      {
        MutexLock buffer_lock(buffer->bmu);
        for (TraceEvent& ev : buffer->events) {
          orphans.push_back(std::move(ev));
        }
      }
      buffers.erase(buffers.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }

  void SetLaneName(int lane, const std::string& name) {
    MutexLock lock(tracer_mu);
    lane_names[lane] = name;
  }

 private:
  Tracer() = default;
};

/// Owns this thread's registration; thread exit moves any still-buffered
/// events into the tracer's orphan list so they survive into the file.
struct BufferHandle {
  ThreadBuffer* buffer = nullptr;
  ~BufferHandle() {
    if (buffer != nullptr) Tracer::Global().ReleaseBuffer(buffer);
  }
};

thread_local BufferHandle tls_buffer;

ThreadBuffer* CurrentBuffer() {
  if (tls_buffer.buffer == nullptr) {
    tls_buffer.buffer = Tracer::Global().RegisterBuffer();
  }
  return tls_buffer.buffer;
}

int ClampLane(int lane) {
  if (lane < 0) return 0;
  if (lane >= kNumLanes) return kNumLanes - 1;
  return lane;
}

/// Lane for the current thread, assigning an external lane on first use.
int CurrentLane() {
  if (tls_lane >= 0) return tls_lane;
  Tracer& tracer = Tracer::Global();
  int lane =
      ClampLane(tracer.next_external.fetch_add(1, std::memory_order_relaxed));
  tracer.SetLaneName(lane, StrFormat("ext-%d", lane - kExternalLaneBase));
  tls_lane = lane;
  return lane;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Tracer::Global().t0)
          .count());
}

void StopTracingAtExit() {
  // Process teardown: nowhere to report a flush failure, drop it.
  Status flush = StopTracing();
  (void)flush;
}

/// Shared Chrome-trace writer: process/thread metadata, then `events` as
/// ph:"X" complete events. `lane_names` points at kNumLanes entries (the
/// caller holds tracer_mu, which guards them).
Status WriteTraceJson(const std::string& path,
                      const std::vector<TraceEvent>& events,
                      const std::string* lane_names, uint64_t seed) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open trace file: " + path);
  }

  bool lane_used[kNumLanes] = {};
  lane_used[kMainLane] = true;
  for (const TraceEvent& ev : events) lane_used[ev.lane] = true;

  JsonWriter writer(out);
  writer.BeginObject();
  writer.Key("traceEvents");
  writer.BeginArray();
  writer.BeginObject();
  writer.KV("name", "process_name");
  writer.KV("ph", "M");
  writer.KV("pid", 1);
  writer.Key("args");
  writer.BeginObject();
  writer.KV("name", "monsoon");
  writer.EndObject();
  writer.EndObject();
  for (int lane = 0; lane < kNumLanes; ++lane) {
    if (!lane_used[lane]) continue;
    writer.BeginObject();
    writer.KV("name", "thread_name");
    writer.KV("ph", "M");
    writer.KV("pid", 1);
    writer.KV("tid", lane);
    writer.Key("args");
    writer.BeginObject();
    std::string name = lane_names[lane];
    if (name.empty()) name = StrFormat("lane-%d", lane);
    writer.KV("name", name);
    writer.EndObject();
    writer.EndObject();
  }
  for (const TraceEvent& ev : events) {
    writer.BeginObject();
    writer.KV("name", ev.name);
    writer.KV("cat", ev.category);
    writer.KV("ph", "X");
    writer.KV("pid", 1);
    writer.KV("tid", ev.lane);
    writer.KV("ts", ev.ts_us);
    writer.KV("dur", ev.dur_us);
    writer.Key("args");
    writer.BeginObject();
    writer.KV("span_id", StrFormat("0x%016llx",
                                   static_cast<unsigned long long>(ev.span_id)));
    writer.KV("seq", ev.seq);
    for (const auto& [key, json_text] : ev.args) {
      writer.Key(key);
      writer.Raw(json_text);
    }
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();
  writer.KV("displayTimeUnit", "ms");
  writer.Key("otherData");
  writer.BeginObject();
  writer.KV("seed", seed);
  writer.EndObject();
  writer.EndObject();
  out << "\n";
  out.flush();
  if (!out) {
    return Status::Internal("failed writing trace file: " + path);
  }
  return Status::OK();
}

}  // namespace

void SetThreadDefaultLane(int lane, const std::string& name) {
  lane = ClampLane(lane);
  tls_lane = lane;
  Tracer::Global().SetLaneName(lane, name);
}

TraceLaneScope::TraceLaneScope(int lane, const std::string& name)
    : saved_lane_(tls_lane) {
  lane = ClampLane(lane);
  tls_lane = lane;
  if (TracingEnabled()) Tracer::Global().SetLaneName(lane, name);
}

TraceLaneScope::~TraceLaneScope() { tls_lane = saved_lane_; }

Status StartTracing(const std::string& path, uint64_t seed) {
  Tracer& tracer = Tracer::Global();
  MutexLock lock(tracer.tracer_mu);
  if (tracer.active) {
    return Status::AlreadyExists("tracing is already active (" + tracer.path +
                                 ")");
  }
  if (TailSamplingActive()) {
    return Status::AlreadyExists("tail sampling owns the tracer");
  }
  tracer.path = path;
  tracer.seed = seed;
  tracer.t0 = std::chrono::steady_clock::now();
  for (int lane = 0; lane < kNumLanes; ++lane) {
    tracer.lanes[lane].rng = Pcg32(seed + static_cast<uint64_t>(lane));
    tracer.lanes[lane].seq = 0;
  }
  if (tracer.lane_names[kMainLane].empty()) {
    tracer.lane_names[kMainLane] = "main";
  }
  for (const auto& buffer : tracer.buffers) {
    MutexLock buffer_lock(buffer->bmu);
    buffer->events.clear();
  }
  tracer.orphans.clear();
  if (tls_lane < 0) tls_lane = kMainLane;

  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit(StopTracingAtExit);
  }

  tracer.active = true;
  internal::g_trace_enabled.store(true, std::memory_order_release);
  return Status::OK();
}

Status StopTracing() {
  Tracer& tracer = Tracer::Global();
  MutexLock lock(tracer.tracer_mu);
  if (!tracer.active) return Status::OK();
  internal::g_trace_enabled.store(false, std::memory_order_release);
  tracer.active = false;

  std::vector<TraceEvent> events;
  for (const auto& buffer : tracer.buffers) {
    MutexLock buffer_lock(buffer->bmu);
    for (TraceEvent& ev : buffer->events) {
      events.push_back(std::move(ev));
    }
    buffer->events.clear();
  }
  for (TraceEvent& ev : tracer.orphans) {
    events.push_back(std::move(ev));
  }
  tracer.orphans.clear();

  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.lane != b.lane) return a.lane < b.lane;
                     return a.seq < b.seq;
                   });

  return WriteTraceJson(tracer.path, events, tracer.lane_names, tracer.seed);
}

bool MaybeStartTracingFromEnv() {
  if (TracingEnabled()) return false;
  const char* path = std::getenv("MONSOON_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  uint64_t seed = kDefaultTraceSeed;
  if (const char* seed_env = std::getenv("MONSOON_TRACE_SEED")) {
    seed = std::strtoull(seed_env, nullptr, 10);
  }
  return StartTracing(path, seed).ok();
}

Status StartTailSampling(const TailSamplingOptions& options) {
  Tracer& tracer = Tracer::Global();
  MutexLock lock(tracer.tracer_mu);
  if (tracer.active) {
    return Status::AlreadyExists("full-file tracing is already active (" +
                                 tracer.path + ")");
  }
  if (TailSamplingActive()) {
    return Status::AlreadyExists("tail sampling is already active");
  }
  tracer.tail_dir = options.dir.empty() ? "." : options.dir;
  tracer.tail_slow_us = options.slow_us;
  tracer.tail_byte_budget.store(options.byte_budget,
                                std::memory_order_relaxed);
  tracer.tail_bytes.store(0, std::memory_order_relaxed);
  tracer.tail_dropped.store(0, std::memory_order_relaxed);
  tracer.seed = options.seed;
  tracer.t0 = std::chrono::steady_clock::now();
  for (int lane = 0; lane < kNumLanes; ++lane) {
    tracer.lanes[lane].rng = Pcg32(options.seed + static_cast<uint64_t>(lane));
    tracer.lanes[lane].seq = 0;
  }
  if (tracer.lane_names[kMainLane].empty()) {
    tracer.lane_names[kMainLane] = "main";
  }
  for (const auto& buffer : tracer.buffers) {
    MutexLock buffer_lock(buffer->bmu);
    buffer->events.clear();
  }
  tracer.orphans.clear();
  if (tls_lane < 0) tls_lane = kMainLane;

  internal::g_tail_mode.store(true, std::memory_order_release);
  internal::g_trace_enabled.store(true, std::memory_order_release);
  return Status::OK();
}

Status StopTailSampling() {
  Tracer& tracer = Tracer::Global();
  MutexLock lock(tracer.tracer_mu);
  if (!TailSamplingActive()) return Status::OK();
  internal::g_trace_enabled.store(false, std::memory_order_release);
  internal::g_tail_mode.store(false, std::memory_order_release);
  for (const auto& buffer : tracer.buffers) {
    MutexLock buffer_lock(buffer->bmu);
    buffer->events.clear();
  }
  tracer.orphans.clear();
  tracer.tail_bytes.store(0, std::memory_order_relaxed);
  return Status::OK();
}

bool MaybeStartTailSamplingFromEnv() {
  if (TracingEnabled() || TailSamplingActive()) return false;
  if (!HasEnv("MONSOON_TRACE_TAIL_MS")) return false;
  TailSamplingOptions options;
  options.slow_us = EnvUint64("MONSOON_TRACE_TAIL_MS", 0) * 1000;
  options.dir = EnvString("MONSOON_TRACE_TAIL_DIR").value_or(".");
  options.seed = EnvUint64("MONSOON_TRACE_SEED", kDefaultTraceSeed);
  options.byte_budget = EnvUint64("MONSOON_TRACE_TAIL_BUDGET",
                                  TailSamplingOptions().byte_budget);
  return StartTailSampling(options).ok();
}

uint64_t BeginQueryTrace() {
  if (!TailSamplingActive()) return 0;
  Tracer& tracer = Tracer::Global();
  uint64_t serial =
      tracer.next_query_serial.fetch_add(1, std::memory_order_relaxed) + 1;
  tls_query_serial = serial;
  return serial;
}

QueryTraceDecision EndQueryTrace(uint64_t serial,
                                 const QueryTraceVerdict& verdict) {
  QueryTraceDecision decision;
  if (serial == 0) return decision;
  if (tls_query_serial == serial) tls_query_serial = 0;

  Tracer& tracer = Tracer::Global();
  MutexLock lock(tracer.tracer_mu);

  // Sweep this query's events out of every buffer (they normally live in
  // the session thread's buffer only; orphans cover a thread that exited).
  std::vector<TraceEvent> events;
  auto take_from = [&](std::vector<TraceEvent>& source) {
    auto keep_end = std::stable_partition(
        source.begin(), source.end(),
        [&](const TraceEvent& ev) { return ev.query_serial != serial; });
    for (auto it = keep_end; it != source.end(); ++it) {
      events.push_back(std::move(*it));
    }
    source.erase(keep_end, source.end());
  };
  for (const auto& buffer : tracer.buffers) {
    MutexLock buffer_lock(buffer->bmu);
    take_from(buffer->events);
  }
  take_from(tracer.orphans);
  size_t freed = 0;
  for (const TraceEvent& ev : events) freed += ApproxEventBytes(ev);
  tracer.tail_bytes.fetch_sub(freed, std::memory_order_relaxed);

  if (!TailSamplingActive()) return decision;  // stopped while in flight

  if (verdict.cancelled) {
    decision.reason = "cancelled";
  } else if (verdict.faulted) {
    decision.reason = "faulted";
  } else if (verdict.degraded) {
    decision.reason = "degraded";
  } else if (tracer.tail_slow_us > 0 &&
             verdict.elapsed_us >= tracer.tail_slow_us) {
    decision.reason = "slow";
  } else {
    decision.reason = "fast";
    return decision;  // dropped: events discarded with this scope
  }
  decision.sampled = true;

  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.lane != b.lane) return a.lane < b.lane;
                     return a.seq < b.seq;
                   });

  // The sampling-decision marker leads the file so checkers can classify
  // the trace without scanning it.
  TraceEvent marker;
  marker.category = "obs";
  marker.name = "sampling_decision";
  marker.lane = events.empty() ? kMainLane : events.front().lane;
  marker.span_id = serial;
  marker.seq = 0;
  marker.ts_us = events.empty() ? 0 : events.front().ts_us;
  marker.dur_us = 0;
  marker.args.emplace_back("decision", "\"sampled\"");
  marker.args.emplace_back("reason", "\"" + decision.reason + "\"");
  marker.args.emplace_back(
      "elapsed_us",
      StrFormat("%llu", static_cast<unsigned long long>(verdict.elapsed_us)));
  marker.args.emplace_back(
      "serial", StrFormat("%llu", static_cast<unsigned long long>(serial)));
  marker.args.emplace_back(
      "budget_dropped_events",
      StrFormat("%llu", static_cast<unsigned long long>(
                            tracer.tail_dropped.load(std::memory_order_relaxed))));
  events.insert(events.begin(), std::move(marker));

  decision.path =
      tracer.tail_dir +
      StrFormat("/tail-%06llu-", static_cast<unsigned long long>(serial)) +
      decision.reason + ".json";
  Status written =
      WriteTraceJson(decision.path, events, tracer.lane_names, tracer.seed);
  if (!written.ok()) {
    decision.sampled = false;
    decision.path.clear();
  }
  return decision;
}

uint64_t TailSamplingDroppedEvents() {
  return Tracer::Global().tail_dropped.load(std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* category, const char* name) {
  enabled_ = TracingEnabled();
  if (!enabled_) return;
  category_ = category;
  name_ = name;
  lane_ = CurrentLane();
  LaneState& lane_state = Tracer::Global().lanes[lane_];
  span_id_ = (static_cast<uint64_t>(lane_state.rng.Next()) << 32) |
             lane_state.rng.Next();
  seq_ = ++lane_state.seq;
  start_us_ = NowUs();
}

void TraceSpan::End() {
  if (!enabled_) return;
  enabled_ = false;
  TraceEvent ev;
  ev.category = category_;
  ev.name = name_;
  ev.lane = lane_;
  ev.span_id = span_id_;
  ev.seq = seq_;
  ev.ts_us = start_us_;
  uint64_t end_us = NowUs();
  ev.dur_us = end_us >= start_us_ ? end_us - start_us_ : 0;
  ev.query_serial = tls_query_serial;
  ev.args = std::move(args_);
  if (internal::g_tail_mode.load(std::memory_order_acquire)) {
    // Tail mode buffers only events inside a query scope, under the global
    // byte budget; everything else is discarded right here so idle-time
    // spans can never grow the buffers unboundedly.
    if (ev.query_serial == 0) return;
    Tracer& tracer = Tracer::Global();
    size_t bytes = ApproxEventBytes(ev);
    size_t budget = tracer.tail_byte_budget.load(std::memory_order_relaxed);
    if (tracer.tail_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes >
        budget) {
      tracer.tail_bytes.fetch_sub(bytes, std::memory_order_relaxed);
      tracer.tail_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  ThreadBuffer* buffer = CurrentBuffer();
  MutexLock lock(buffer->bmu);
  buffer->events.push_back(std::move(ev));
}

TraceSpan& TraceSpan::Arg(const char* key, int64_t value) {
  if (enabled_) {
    args_.emplace_back(key, StrFormat("%lld", static_cast<long long>(value)));
  }
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, uint64_t value) {
  if (enabled_) {
    args_.emplace_back(key,
                       StrFormat("%llu", static_cast<unsigned long long>(value)));
  }
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, int value) {
  return Arg(key, static_cast<int64_t>(value));
}

TraceSpan& TraceSpan::Arg(const char* key, double value) {
  if (enabled_) args_.emplace_back(key, StrFormat("%.17g", value));
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, bool value) {
  if (enabled_) args_.emplace_back(key, value ? "true" : "false");
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, const char* value) {
  // Checked here too (not just in the string overload) so the disabled
  // path never materializes a std::string for long literals.
  if (enabled_) return Arg(key, std::string(value));
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, const std::string& value) {
  if (enabled_) {
    std::string quoted;
    quoted.reserve(value.size() + 2);
    quoted += '"';
    quoted += JsonEscape(value);
    quoted += '"';
    args_.emplace_back(key, std::move(quoted));
  }
  return *this;
}

}  // namespace monsoon::obs
