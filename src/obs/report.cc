#include "obs/report.h"

#include "obs/json.h"

namespace monsoon::obs {

namespace {

void WriteHistogram(JsonWriter& writer, const HistogramSnapshot& snap) {
  writer.BeginObject();
  writer.KV("count", snap.count);
  writer.KV("sum", snap.sum);
  writer.Key("buckets");
  writer.BeginArray();
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    if (snap.buckets[i] == 0) continue;
    writer.BeginArray();
    writer.Uint(Histogram::BucketLowerBound(i));
    writer.Uint(snap.buckets[i]);
    writer.EndArray();
  }
  writer.EndArray();
  writer.EndObject();
}

}  // namespace

void WriteMetricsJson(JsonWriter& writer, const MetricsSnapshot& snap) {
  writer.BeginObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, value] : snap.counters) {
    writer.KV(name, value);
  }
  writer.EndObject();
  writer.Key("gauges");
  writer.BeginObject();
  for (const auto& [name, value] : snap.gauges) {
    writer.KV(name, value);
  }
  writer.EndObject();
  writer.Key("histograms");
  writer.BeginObject();
  for (const auto& [name, histogram] : snap.histograms) {
    writer.Key(name);
    WriteHistogram(writer, histogram);
  }
  writer.EndObject();
  writer.EndObject();
}

void WriteRunReport(std::ostream& out, const std::vector<QueryReport>& queries,
                    const MetricsSnapshot& registry) {
  JsonWriter writer(out);
  writer.BeginObject();
  writer.KV("monsoon_run_report", static_cast<int64_t>(1));
  writer.Key("queries");
  writer.BeginArray();
  for (const QueryReport& q : queries) {
    writer.BeginObject();
    writer.KV("query", q.query);
    writer.KV("strategy", q.strategy);
    writer.KV("status", q.status);
    writer.KV("result_rows", q.result_rows);
    writer.KV("objects_processed", q.objects_processed);
    writer.KV("work_units", q.work_units);
    writer.Key("seconds");
    writer.BeginObject();
    writer.KV("total", q.total_seconds);
    writer.KV("plan", q.plan_seconds);
    writer.KV("stats", q.stats_seconds);
    writer.KV("exec", q.exec_seconds);
    double other =
        q.total_seconds - q.plan_seconds - q.stats_seconds - q.exec_seconds;
    writer.KV("other", other > 0 ? other : 0.0);
    writer.EndObject();
    writer.KV("degraded", q.degraded);
    if (q.degraded) {
      writer.Key("degraded_reasons");
      writer.BeginArray();
      for (const std::string& reason : q.degraded_reasons) writer.String(reason);
      writer.EndArray();
    }
    writer.KV("execute_rounds", q.execute_rounds);
    writer.KV("stats_collections", q.stats_collections);
    writer.Key("udf_cache");
    writer.BeginObject();
    writer.KV("hits", q.udf_cache_hits);
    writer.KV("misses", q.udf_cache_misses);
    writer.KV("bytes", q.udf_cache_bytes);
    uint64_t lookups = q.udf_cache_hits + q.udf_cache_misses;
    writer.KV("hit_rate",
              lookups == 0
                  ? 0.0
                  : static_cast<double>(q.udf_cache_hits) /
                        static_cast<double>(lookups));
    writer.EndObject();
    writer.Key("recovery");
    writer.BeginObject();
    writer.KV("fault_retries", q.fault_retries);
    writer.KV("shard_retries", q.shard_retries);
    writer.KV("shard_failures", q.shard_failures);
    writer.KV("shard_recoveries", q.shard_recoveries);
    writer.EndObject();
    writer.Key("metrics");
    WriteMetricsJson(writer, q.metrics);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("registry");
  WriteMetricsJson(writer, registry);
  writer.EndObject();
  out << "\n";
}

}  // namespace monsoon::obs
