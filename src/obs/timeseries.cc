#include "obs/timeseries.h"

#include <algorithm>
#include <utility>

namespace monsoon::obs {

double HistogramPercentile(const HistogramSnapshot& snap, double q) {
  if (snap.count == 0 || snap.buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based; q=0 picks the first sample.
  double rank = q * static_cast<double>(snap.count);
  if (rank < 1.0) rank = 1.0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    if (snap.buckets[i] == 0) continue;
    uint64_t before = cumulative;
    cumulative += snap.buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == 0) return 0;  // bucket 0 holds exact zeros
    double lower = static_cast<double>(Histogram::BucketLowerBound(i));
    double upper = lower * 2;
    double within = (rank - static_cast<double>(before)) /
                    static_cast<double>(snap.buckets[i]);
    return lower + within * (upper - lower);
  }
  // Unreachable when count matches the buckets; be defensive anyway.
  return static_cast<double>(
      Histogram::BucketLowerBound(snap.buckets.size() - 1));
}

uint64_t WindowSummary::CounterDelta(const std::string& name) const {
  auto it = delta.counters.find(name);
  return it == delta.counters.end() ? 0 : it->second;
}

double WindowSummary::Rate(const std::string& name) const {
  if (window_seconds <= 0) return 0;
  return static_cast<double>(CounterDelta(name)) / window_seconds;
}

const HistogramSnapshot* WindowSummary::Histogram(
    const std::string& name) const {
  auto it = delta.histograms.find(name);
  return it == delta.histograms.end() ? nullptr : &it->second;
}

double WindowSummary::Percentile(const std::string& name, double q) const {
  const HistogramSnapshot* snap = Histogram(name);
  return snap == nullptr ? 0 : HistogramPercentile(*snap, q);
}

TimeSeriesRing::TimeSeriesRing(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {}

void TimeSeriesRing::Record(double interval_seconds, MetricsSnapshot delta) {
  Slot slot;
  slot.interval_seconds = interval_seconds > 0 ? interval_seconds : 0;
  slot.delta = std::move(delta);
  MutexLock lock(ring_mu_);
  if (slots_.size() < capacity_) {
    slots_.push_back(std::move(slot));
  } else {
    slots_[next_ % capacity_] = std::move(slot);
  }
  ++next_;
  ++ticks_;
}

WindowSummary TimeSeriesRing::Window(double seconds) const {
  WindowSummary summary;
  MutexLock lock(ring_mu_);
  size_t count = slots_.size();
  // Newest-first walk; gauges take the first (newest) slot that carries
  // them, counters and histograms accumulate via SnapshotDelta-compatible
  // element-wise addition.
  for (size_t back = 0; back < count; ++back) {
    if (summary.window_seconds >= seconds && summary.slots > 0) break;
    const Slot& slot = slots_[(next_ + capacity_ - 1 - back) % capacity_];
    ++summary.slots;
    summary.window_seconds += slot.interval_seconds;
    for (const auto& [name, value] : slot.delta.counters) {
      summary.delta.counters[name] += value;
    }
    for (const auto& [name, value] : slot.delta.gauges) {
      summary.delta.gauges.emplace(name, value);  // newest wins: no overwrite
    }
    for (const auto& [name, hist] : slot.delta.histograms) {
      HistogramSnapshot& merged = summary.delta.histograms[name];
      if (merged.buckets.empty()) {
        merged.buckets.assign(kHistogramBuckets, 0);
      }
      merged.Merge(hist);
    }
  }
  return summary;
}

void TimeSeriesRing::Clear() {
  MutexLock lock(ring_mu_);
  slots_.clear();
  next_ = 0;
  ticks_ = 0;
}

size_t TimeSeriesRing::size() const {
  MutexLock lock(ring_mu_);
  return slots_.size();
}

uint64_t TimeSeriesRing::ticks() const {
  MutexLock lock(ring_mu_);
  return ticks_;
}

void MetricsSampler::SampleOnce() {
  MetricsSnapshot now = Registry::Global().Snapshot();
  std::chrono::steady_clock::time_point now_time =
      std::chrono::steady_clock::now();
  if (primed_) {
    double interval =
        std::chrono::duration<double>(now_time - last_time_).count();
    ring_->Record(interval, SnapshotDelta(last_, now));
  }
  primed_ = true;
  last_ = std::move(now);
  last_time_ = now_time;
}

void MetricsSampler::Reset() {
  primed_ = false;
  last_ = MetricsSnapshot();
}

}  // namespace monsoon::obs
