#include "obs/exposition.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace monsoon::obs {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c));
}

std::string ExpositionName(const std::string& registry_name) {
  std::string name;
  name.reserve(registry_name.size());
  for (char c : registry_name) {
    name.push_back(IsNameChar(c) ? c : '_');
  }
  if (name.empty() || !IsNameStartChar(name[0])) name.insert(name.begin(), '_');
  return name;
}

void RenderHistogram(std::ostringstream& out, const std::string& name,
                     const HistogramSnapshot& snap) {
  out << "# TYPE " << name << " histogram\n";
  size_t highest = 0;
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    if (snap.buckets[i] != 0) highest = i;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= highest && i < snap.buckets.size(); ++i) {
    cumulative += snap.buckets[i];
    if (i == 0 && snap.buckets[0] == 0 && highest > 0) continue;
    // Inclusive upper bound of the log2 bucket: 0 for the zeros bucket,
    // 2^i - 1 for [2^(i-1), 2^i) over integer samples.
    uint64_t le = i == 0 ? 0 : (uint64_t{2} << (i - 1)) - 1;
    out << name << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
  }
  out << name << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
  out << name << "_sum " << snap.sum << "\n";
  out << name << "_count " << snap.count << "\n";
}

struct LineParse {
  std::string name;
  std::string le;  // value of the "le" label, empty when absent
  double value = 0;
  bool has_le = false;
};

Status ParseSampleLine(const std::string& line, int line_no, LineParse* out) {
  size_t pos = 0;
  if (pos >= line.size() || !IsNameStartChar(line[pos])) {
    return Status::InvalidArgument(
        StrFormat("exposition line %d: bad metric name start", line_no));
  }
  while (pos < line.size() && IsNameChar(line[pos])) ++pos;
  out->name = line.substr(0, pos);
  if (pos < line.size() && line[pos] == '{') {
    size_t close = line.find('}', pos);
    if (close == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("exposition line %d: unterminated label set", line_no));
    }
    std::string labels = line.substr(pos + 1, close - pos - 1);
    // Only the "le" label matters for validation; reject label text with
    // no '=' to catch truncated writes.
    size_t label_pos = 0;
    while (label_pos < labels.size()) {
      size_t eq = labels.find('=', label_pos);
      if (eq == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("exposition line %d: malformed label", line_no));
      }
      std::string label_name = labels.substr(label_pos, eq - label_pos);
      if (eq + 1 >= labels.size() || labels[eq + 1] != '"') {
        return Status::InvalidArgument(
            StrFormat("exposition line %d: unquoted label value", line_no));
      }
      size_t end_quote = labels.find('"', eq + 2);
      if (end_quote == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("exposition line %d: unterminated label value", line_no));
      }
      if (label_name == "le") {
        out->le = labels.substr(eq + 2, end_quote - eq - 2);
        out->has_le = true;
      }
      label_pos = end_quote + 1;
      if (label_pos < labels.size() && labels[label_pos] == ',') ++label_pos;
    }
    pos = close + 1;
  }
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  if (pos >= line.size()) {
    return Status::InvalidArgument(
        StrFormat("exposition line %d: missing sample value", line_no));
  }
  std::string value_text = line.substr(pos);
  // Trim an optional trailing timestamp (second whitespace-separated token).
  size_t space = value_text.find_first_of(" \t");
  if (space != std::string::npos) value_text = value_text.substr(0, space);
  if (value_text == "+Inf") {
    out->value = std::numeric_limits<double>::infinity();
    return Status::OK();
  }
  char* end = nullptr;
  out->value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str() || *end != '\0') {
    return Status::InvalidArgument(StrFormat(
        "exposition line %d: unparseable value '%s'", line_no,
        value_text.c_str()));
  }
  return Status::OK();
}

double ParseLe(const std::string& le) {
  if (le == "+Inf") return std::numeric_limits<double>::infinity();
  return std::strtod(le.c_str(), nullptr);
}

}  // namespace

std::string RenderPrometheusText(const MetricsSnapshot& snap,
                                 const std::vector<ExpositionExtra>& extras) {
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    std::string exp_name = ExpositionName(name) + "_total";
    out << "# TYPE " << exp_name << " counter\n";
    out << exp_name << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string exp_name = ExpositionName(name);
    out << "# TYPE " << exp_name << " gauge\n";
    out << exp_name << " " << value << "\n";
  }
  for (const auto& [name, histogram] : snap.histograms) {
    RenderHistogram(out, ExpositionName(name), histogram);
  }
  for (const ExpositionExtra& extra : extras) {
    std::string exp_name = ExpositionName(extra.name);
    out << "# TYPE " << exp_name << " gauge\n";
    out << exp_name << " " << StrFormat("%.17g", extra.value) << "\n";
  }
  return out.str();
}

Status ValidateExposition(const std::string& text) {
  std::map<std::string, std::string> family_type;
  struct HistogramChecks {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    bool has_sum = false;
    bool has_count = false;
    double count = 0;
  };
  std::map<std::string, HistogramChecks> histograms;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  int samples = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, name, rest;
      comment >> hash >> keyword >> name >> rest;
      if (keyword == "TYPE") {
        if (name.empty() || rest.empty()) {
          return Status::InvalidArgument(
              StrFormat("exposition line %d: malformed TYPE line", line_no));
        }
        if (family_type.count(name) != 0) {
          return Status::InvalidArgument(StrFormat(
              "exposition line %d: duplicate TYPE for '%s'", line_no,
              name.c_str()));
        }
        family_type[name] = rest;
      }
      continue;  // HELP and free comments pass through
    }
    LineParse sample;
    MONSOON_RETURN_IF_ERROR(ParseSampleLine(line, line_no, &sample));
    ++samples;

    // Resolve the family: histogram children strip _bucket/_sum/_count.
    std::string family = sample.name;
    std::string suffix;
    for (const char* candidate : {"_bucket", "_sum", "_count"}) {
      std::string c = candidate;
      if (family.size() > c.size() &&
          family.compare(family.size() - c.size(), c.size(), c) == 0) {
        std::string base = family.substr(0, family.size() - c.size());
        auto it = family_type.find(base);
        if (it != family_type.end() && it->second == "histogram") {
          family = base;
          suffix = c;
          break;
        }
      }
    }
    auto it = family_type.find(family);
    if (it == family_type.end()) {
      return Status::InvalidArgument(StrFormat(
          "exposition line %d: sample '%s' precedes its TYPE line", line_no,
          sample.name.c_str()));
    }
    if (it->second == "histogram") {
      if (suffix.empty()) {
        return Status::InvalidArgument(StrFormat(
            "exposition line %d: bare sample for histogram family '%s'",
            line_no, family.c_str()));
      }
      HistogramChecks& checks = histograms[family];
      if (suffix == "_bucket") {
        if (!sample.has_le) {
          return Status::InvalidArgument(StrFormat(
              "exposition line %d: histogram bucket without le label",
              line_no));
        }
        checks.buckets.emplace_back(ParseLe(sample.le), sample.value);
      } else if (suffix == "_sum") {
        checks.has_sum = true;
      } else {
        checks.has_count = true;
        checks.count = sample.value;
      }
    }
  }
  if (samples == 0) {
    return Status::InvalidArgument("exposition has no samples");
  }
  for (const auto& [family, checks] : histograms) {
    if (checks.buckets.empty()) {
      return Status::InvalidArgument("histogram '" + family + "' has no buckets");
    }
    for (size_t i = 1; i < checks.buckets.size(); ++i) {
      if (!(checks.buckets[i].first > checks.buckets[i - 1].first)) {
        return Status::InvalidArgument(
            "histogram '" + family + "' le labels are not increasing");
      }
      if (checks.buckets[i].second < checks.buckets[i - 1].second) {
        return Status::InvalidArgument(
            "histogram '" + family + "' cumulative counts decrease");
      }
    }
    if (!std::isinf(checks.buckets.back().first)) {
      return Status::InvalidArgument(
          "histogram '" + family + "' is missing the +Inf bucket");
    }
    if (!checks.has_sum || !checks.has_count) {
      return Status::InvalidArgument(
          "histogram '" + family + "' is missing _sum or _count");
    }
    if (checks.buckets.back().second != checks.count) {
      return Status::InvalidArgument(
          "histogram '" + family + "' +Inf bucket disagrees with _count");
    }
  }
  return Status::OK();
}

}  // namespace monsoon::obs
