#ifndef MONSOON_OBS_JSON_H_
#define MONSOON_OBS_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace monsoon::obs {

/// Minimal JSON support shared by the trace writer, the run-report writer,
/// their tests, and tools/obs/monsoon-trace-check. Deliberately small: the
/// subsystem only needs (a) a streaming writer with correct escaping and
/// (b) a parser good enough to validate its own output and round-trip it.

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \u00XX.
std::string JsonEscape(const std::string& s);

/// A parsed JSON document. Objects preserve member order, so a
/// parse -> Serialize round trip reproduces the structural layout of the
/// input — the trace determinism test leans on this to compare two traces
/// after zeroing the wall-clock fields.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0;
  /// Original spelling of a number token; Serialize() emits it verbatim so
  /// integers survive without a double round trip.
  std::string number_text;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  JsonValue* FindMutable(const std::string& key);

  /// Compact serialization (no whitespace), UTF-8 passthrough.
  std::string Serialize() const;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
StatusOr<JsonValue> JsonParse(const std::string& text);

/// Streaming writer for hand-built documents (trace files, run reports).
/// The caller drives nesting explicitly; the writer inserts commas and
/// escapes strings. Keys and values must alternate inside objects.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(const std::string& key);

  void String(const std::string& value);
  /// Emits pre-serialized JSON text verbatim as the next value (the trace
  /// layer stores span args already serialized).
  void Raw(const std::string& json_text);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Key + scalar in one call.
  void KV(const std::string& key, const std::string& value);
  void KV(const std::string& key, const char* value);
  void KV(const std::string& key, int64_t value);
  void KV(const std::string& key, uint64_t value);
  void KV(const std::string& key, int value);
  void KV(const std::string& key, double value);
  void KV(const std::string& key, bool value);

 private:
  void BeforeValue();

  std::ostream& out_;
  /// One entry per open object/array: true until the first element lands.
  std::vector<bool> first_;
  bool pending_key_ = false;
};

}  // namespace monsoon::obs

#endif  // MONSOON_OBS_JSON_H_
