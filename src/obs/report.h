#ifndef MONSOON_OBS_REPORT_H_
#define MONSOON_OBS_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace monsoon::obs {

/// One strategy run of one query, flattened for the per-query run report.
/// The scalar fields mirror the harness CSV columns exactly (same source:
/// RunResult), so the JSON report reproduces the CSV bit-identically;
/// `metrics` carries the registry delta attributed to this run — the
/// Table 8-style breakdown of where objects and time went.
struct QueryReport {
  std::string query;
  std::string strategy;
  std::string status;

  uint64_t result_rows = 0;
  uint64_t objects_processed = 0;
  uint64_t work_units = 0;

  double total_seconds = 0;
  double plan_seconds = 0;
  double stats_seconds = 0;
  double exec_seconds = 0;

  int execute_rounds = 0;
  int stats_collections = 0;

  uint64_t udf_cache_hits = 0;
  uint64_t udf_cache_misses = 0;
  uint64_t udf_cache_bytes = 0;

  /// Recovery accounting: transient faults retried mid-run (fault layer and
  /// shard supervisor), shards that exhausted their retry budget, and shards
  /// that succeeded after at least one retry. All zero on a clean run, so
  /// CI can assert a fault-injected run both recovered (recoveries > 0,
  /// failures == 0) and produced clean-run-identical accounting.
  uint64_t fault_retries = 0;
  uint64_t shard_retries = 0;
  uint64_t shard_failures = 0;
  uint64_t shard_recoveries = 0;

  /// Graceful degradation: true when the run completed but one or more Σ
  /// statistics passes were skipped on transient faults, with one
  /// human-readable reason per skipped pass. Reported in the JSON run
  /// report only — the harness CSV stays byte-identical across fault
  /// configurations.
  bool degraded = false;
  std::vector<std::string> degraded_reasons;

  /// Registry delta captured around this run (SnapshotDelta of the global
  /// registry before/after).
  MetricsSnapshot metrics;
};

/// Writes the run-report JSON document: a "queries" array (one entry per
/// QueryReport, scalar fields + per-run metrics delta) and a "registry"
/// object holding the full end-of-run registry snapshot. Histograms are
/// emitted sparsely as [[bucket_lower_bound, count], ...].
void WriteRunReport(std::ostream& out, const std::vector<QueryReport>& queries,
                    const MetricsSnapshot& registry);

class JsonWriter;

/// Writes one MetricsSnapshot as the report's {"counters":{...},
/// "gauges":{...}, "histograms":{...}} object — the same layout the run
/// report embeds per query. Shared with the server's `.stats` reply, which
/// carries a per-connection registry delta in this form.
void WriteMetricsJson(JsonWriter& writer, const MetricsSnapshot& snap);

}  // namespace monsoon::obs

#endif  // MONSOON_OBS_REPORT_H_
