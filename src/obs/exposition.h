#ifndef MONSOON_OBS_EXPOSITION_H_
#define MONSOON_OBS_EXPOSITION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace monsoon::obs {

/// Prometheus text exposition (format version 0.0.4) for the metrics
/// registry. Registry names use dots ("monsoon.server.latency_us"); the
/// exposition flattens every character outside [a-zA-Z0-9_:] to '_'
/// ("monsoon_server_latency_us"). Counters gain a "_total" suffix per the
/// naming convention; histograms emit cumulative "le" buckets (the log2
/// bucket i holds integer samples in [2^(i-1), 2^i), so its inclusive
/// upper bound is 2^i - 1), a "+Inf" bucket, "_sum" and "_count".

/// Extra scalar rendered as an untyped gauge line — the server appends
/// window percentiles and rates computed from the time-series ring.
struct ExpositionExtra {
  std::string name;   // already in exposition spelling
  double value = 0;
};

/// Renders `snap` (typically Registry::Global().Snapshot()) plus `extras`.
std::string RenderPrometheusText(const MetricsSnapshot& snap,
                                 const std::vector<ExpositionExtra>& extras = {});

/// Validates exposition text: metric names match the grammar, every sample
/// follows a "# TYPE" line for its family, values parse as numbers, and
/// histogram families have nondecreasing cumulative buckets with strictly
/// increasing "le" labels, a final "+Inf" bucket, and bucket("+Inf") ==
/// family "_count". Used by the CI stage (through monsoon-trace-check
/// --exposition) and the unit tests; deliberately strict so a format
/// regression fails the build, not the operator's scraper.
Status ValidateExposition(const std::string& text);

}  // namespace monsoon::obs

#endif  // MONSOON_OBS_EXPOSITION_H_
