#ifndef MONSOON_OBS_SLOWLOG_H_
#define MONSOON_OBS_SLOWLOG_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace monsoon::obs {

/// Structured slow-query log: one JSON object per line (JSONL), appended
/// as queries finish. Shared by the server (--slow-log=) and the harness
/// (MONSOON_SLOW_LOG); entries are filled by the caller so this layer
/// stays free of executor types. A query is eligible when it ran at or
/// over the slow threshold, degraded, was cancelled, or failed — the same
/// predicate the tail trace sampler uses, so a logged query's `trace`
/// field (when tail sampling is on) points at its kept trace file.
struct SlowLogEntry {
  std::string sql;          // the request text (query name in the harness)
  std::string fingerprint;  // spec fingerprint / strategy label
  // "cancelled" | "error" | "degraded" | "retried" | "slow", in that
  // precedence order (a cancelled query that also retried logs "cancelled").
  std::string reason;
  std::string status;       // "ok" | "timeout" | "error" | "cancelled"

  uint64_t elapsed_us = 0;
  uint64_t result_rows = 0;
  uint64_t objects_processed = 0;
  uint64_t work_units = 0;
  uint64_t udf_cache_hits = 0;
  uint64_t udf_cache_misses = 0;

  bool degraded = false;
  std::vector<std::string> degraded_reasons;

  /// Tail-sampled trace file for this query; empty when tracing was off
  /// or the trace was dropped.
  std::string trace_path;
};

class SlowQueryLog {
 public:
  /// `slow_us` = 0 logs only degraded / cancelled / failed queries; any
  /// other value additionally logs clean queries at or over the threshold.
  SlowQueryLog(std::string path, uint64_t slow_us);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Opens the file for append. Not re-entrant with Log.
  Status Open();

  bool open() const { return opened_; }
  uint64_t slow_us() const { return slow_us_; }
  const std::string& path() const { return path_; }

  /// The logging predicate, exposed so callers can skip building an entry.
  /// `retried` marks a query that completed only by recovering from
  /// injected/transient faults (fault-point or shard retries) — always
  /// log-worthy: a fleet quietly riding its retry budget is the exact
  /// signal this log exists to surface.
  bool Eligible(uint64_t elapsed_us, bool ok, bool degraded, bool cancelled,
                bool retried = false) const {
    if (degraded || cancelled || !ok || retried) return true;
    return slow_us_ > 0 && elapsed_us >= slow_us_;
  }

  /// Serializes one JSONL line and flushes. Thread-safe; drops silently
  /// when the log is not open (the open failure was already reported).
  void Log(const SlowLogEntry& entry);

  uint64_t entries_written() const;

 private:
  const std::string path_;
  const uint64_t slow_us_;
  bool opened_ = false;

  mutable Mutex log_mu_;
  std::ofstream out_ GUARDED_BY(log_mu_);
  uint64_t entries_ GUARDED_BY(log_mu_) = 0;
};

}  // namespace monsoon::obs

#endif  // MONSOON_OBS_SLOWLOG_H_
