#ifndef MONSOON_OBS_METRICS_H_
#define MONSOON_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace monsoon::obs {

namespace internal {

/// Shard count for the lock-free counter/histogram fast path. A power of
/// two so the per-thread slot assignment is a mask, and large enough that
/// the pool's workers rarely share a cache line even on wide machines.
inline constexpr size_t kShards = 16;

/// Stable per-thread shard slot in [0, kShards). Threads are assigned
/// round-robin on first use; two threads may share a shard (the adds are
/// still atomic — sharding is a contention optimization, not a
/// correctness requirement).
size_t ThreadShard();

}  // namespace internal

/// Number of Histogram buckets: bucket 0 holds exact zeros, bucket i >= 1
/// holds [2^(i-1), 2^i). Fixed log2 scale — merge across shards or
/// snapshots is plain element-wise addition.
inline constexpr size_t kHistogramBuckets = 65;

/// Monotonic event counter, thread-safe. Add() is a relaxed fetch_add on a
/// cache-line-padded per-thread shard; Value() sums the shards, which is
/// exact (integer addition commutes) but only quiescently consistent while
/// writers race. Instances are registry-owned; hot paths hold the pointer.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    cells_[internal::ThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[internal::kShards];
};

/// Last-write-wins instantaneous value (resident bytes, queue depth).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<uint64_t> buckets;  // kHistogramBuckets entries

  /// Element-wise accumulate (shard merge and cross-snapshot union).
  void Merge(const HistogramSnapshot& other);
};

/// Fixed log2-bucket histogram of non-negative integer samples (latencies
/// in microseconds, row counts). Observe() is two relaxed fetch_adds on
/// the caller's shard; Snapshot() merges shards element-wise.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// v == 0 -> 0; otherwise bit_width(v), i.e. v lands in
  /// [2^(index-1), 2^index).
  static size_t BucketIndex(uint64_t v) {
    return v == 0 ? 0 : static_cast<size_t>(std::bit_width(v));
  }

  /// Smallest sample the bucket can hold (inclusive).
  static uint64_t BucketLowerBound(size_t index) {
    return index == 0 ? 0 : uint64_t{1} << (index - 1);
  }

  void Observe(uint64_t v) {
    Shard& shard = shards_[internal::ThreadShard()];
    shard.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kHistogramBuckets];
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  Shard shards_[internal::kShards];
};

/// Single-owner counter for externally-serialized accounting. ExecContext's
/// per-query counters are NOT thread-safe by contract — parallel operators
/// tally morsel-locally and charge at merge barriers — so the per-row
/// budget path must stay a plain integer add, not an atomic. Declaring
/// them as LocalCounter keeps that codegen while satisfying the
/// monsoon-obs lint rule (telemetry counters go through src/obs/ types)
/// and giving them the same Add/Set/Value surface as the shared metrics.
class LocalCounter {
 public:
  void Add(uint64_t n) { value_ += n; }
  void Set(uint64_t v) { value_ = v; }
  uint64_t Value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// LocalCounter's floating-point sibling (accumulated seconds).
class LocalGauge {
 public:
  void Add(double v) { value_ += v; }
  void Set(double v) { value_ = v; }
  double Value() const { return value_; }

 private:
  double value_ = 0;
};

/// Point-in-time copy of every registered metric, keyed by name. Also the
/// unit of per-query attribution: the harness snapshots the global
/// registry around each strategy run and keeps the delta.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// after - before. Counters and histogram buckets subtract (entries whose
/// delta is entirely zero are dropped); gauges are instantaneous, so the
/// delta keeps `after`'s value.
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

/// Process-wide name -> metric table. Get* registers on first use and
/// returns a pointer that stays valid for the process lifetime, so call
/// sites resolve once (function-local static) and pay only the shard add
/// afterwards. A name registers as exactly one kind; asking for the same
/// name as a different kind is a programming error and fails a check.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  Registry() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
};

}  // namespace monsoon::obs

#endif  // MONSOON_OBS_METRICS_H_
