#ifndef MONSOON_OBS_TRACE_H_
#define MONSOON_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace monsoon::obs {

/// Structured tracing in Chrome trace_event format (loadable in
/// chrome://tracing and Perfetto). Spans are emitted as complete events
/// (ph:"X") onto *logical lanes* instead of OS thread ids: the lane layout
/// is fixed per process, so a same-seed serial run produces byte-identical
/// traces modulo the ts/dur wall-clock fields. Span ids and sequence
/// numbers come from per-lane Pcg32 streams seeded with seed + lane —
/// never from the clock.
///
/// Lifecycle: StartTracing(path, seed) arms the global flag; TraceSpan
/// objects on any thread buffer events locally; StopTracing() disarms,
/// drains every buffer, sorts by (lane, seq), and writes the JSON file.
/// When tracing is off a TraceSpan costs one acquire load and a branch —
/// no allocation, no lock (pinned by bench_obs_overhead and the
/// zero-allocation test).

namespace internal {
extern std::atomic<bool> g_trace_enabled;
extern std::atomic<bool> g_tail_mode;
}  // namespace internal

inline bool TracingEnabled() {
  // acquire pairs with the release store in StartTracing so a thread that
  // sees the flag also sees the reset lane states and trace epoch.
  return internal::g_trace_enabled.load(std::memory_order_acquire);
}

/// True while tail-based sampling (StartTailSampling) owns the tracer.
inline bool TailSamplingActive() {
  return internal::g_tail_mode.load(std::memory_order_acquire);
}

/// Logical lane layout. A lane is the "tid" in the trace file.
inline constexpr int kMainLane = 0;
/// Root-parallel MCTS workers: lane = kMctsLaneBase + worker index.
inline constexpr int kMctsLaneBase = 1;
/// Thread-pool workers: lane = kPoolLaneBase + pool worker id.
inline constexpr int kPoolLaneBase = 64;
/// Threads with no assigned lane draw one from 128 upward on first use.
inline constexpr int kExternalLaneBase = 128;
inline constexpr int kNumLanes = 192;

inline constexpr uint64_t kDefaultTraceSeed = 0x6d6f6e736f6f6eULL;

/// Permanently assigns this thread's default lane (pool workers call this
/// once from WorkerLoop). `name` labels the lane in the trace viewer.
void SetThreadDefaultLane(int lane, const std::string& name);

/// Scoped lane override for the current thread (MCTS worker tasks, which
/// run on arbitrary pool threads but must trace onto their worker's lane).
class TraceLaneScope {
 public:
  TraceLaneScope(int lane, const std::string& name);
  ~TraceLaneScope();

  TraceLaneScope(const TraceLaneScope&) = delete;
  TraceLaneScope& operator=(const TraceLaneScope&) = delete;

 private:
  int saved_lane_;
};

/// Begins capturing. Fails if tracing is already active. Resets every
/// lane's Pcg32 stream to seed + lane so same-seed runs replay span ids.
Status StartTracing(const std::string& path,
                    uint64_t seed = kDefaultTraceSeed);

/// Stops capturing and writes the JSON file passed to StartTracing.
/// Idempotent: returns OK if tracing was not active.
Status StopTracing();

/// Starts tracing from MONSOON_TRACE=<path> (and optional
/// MONSOON_TRACE_SEED=<n>); returns true if tracing was started. No-op if
/// the variable is unset or tracing is already active.
bool MaybeStartTracingFromEnv();

/// --- Tail-based trace sampling -------------------------------------------
///
/// Production mode: tracing stays armed for every query, but the buffered
/// events are kept only for queries that *end* interesting — slower than a
/// threshold, degraded, cancelled, or faulted — and are dropped at query
/// end otherwise, under a global byte budget. Each kept query becomes its
/// own Chrome trace file in `dir`, prefixed with a "sampling_decision"
/// marker event recording why it was kept.
///
/// Scoping: BeginQueryTrace() tags the calling thread with a fresh query
/// serial; spans recorded by that thread until the matching EndQueryTrace()
/// carry the serial. In tail mode, spans on threads with no active serial
/// (other sessions' pool workers, morsel tasks stolen by peers) are not
/// buffered — a tail trace documents the session thread's timeline, which
/// is where the MDP / Σ / executor spans of a server query live. Full-file
/// tracing (StartTracing) and tail sampling are mutually exclusive.

struct TailSamplingOptions {
  /// Directory for kept trace files ("<dir>/tail-<serial>-<reason>.json").
  std::string dir;
  /// Keep queries with elapsed_us >= slow_us; 0 keeps only degraded /
  /// cancelled / faulted queries.
  uint64_t slow_us = 0;
  /// Span-id stream seed, as StartTracing.
  uint64_t seed = kDefaultTraceSeed;
  /// Cap on bytes buffered across all in-flight queries; events past it
  /// are dropped (counted per query and stamped into the marker event).
  size_t byte_budget = 8 << 20;
};

/// Arms tail sampling. Fails if tracing (either mode) is already active.
Status StartTailSampling(const TailSamplingOptions& options);

/// Disarms tail sampling and discards any still-buffered events (queries
/// that never reached EndQueryTrace). Idempotent.
Status StopTailSampling();

/// Arms tail sampling from MONSOON_TRACE_TAIL_MS (threshold, milliseconds)
/// and MONSOON_TRACE_TAIL_DIR (default "."); returns true when armed.
bool MaybeStartTailSamplingFromEnv();

/// Opens a per-query capture scope on the calling thread and returns its
/// serial (> 0), or 0 when tail sampling is inactive. Costs one acquire
/// load when inactive (gated by bench_obs_overhead).
uint64_t BeginQueryTrace();

/// How the query ended; EndQueryTrace combines this with the configured
/// threshold to reach the keep/drop decision.
struct QueryTraceVerdict {
  uint64_t elapsed_us = 0;
  bool degraded = false;
  bool cancelled = false;
  bool faulted = false;  // finished with a non-OK, non-cancel status
};

struct QueryTraceDecision {
  bool sampled = false;
  /// "slow" | "degraded" | "cancelled" | "faulted" | "fast" (dropped).
  std::string reason;
  /// Path of the written trace file; empty when dropped.
  std::string path;
};

/// Closes the scope opened by BeginQueryTrace: writes the query's trace
/// file when the verdict keeps it, discards the events otherwise. Passing
/// serial == 0 is a no-op (tail sampling inactive at Begin time).
QueryTraceDecision EndQueryTrace(uint64_t serial,
                                 const QueryTraceVerdict& verdict);

/// Events dropped by the byte budget since StartTailSampling.
uint64_t TailSamplingDroppedEvents();

/// RAII span. Construction samples the start time and draws a span id
/// from the current lane's stream; End() (or the destructor) samples the
/// duration and buffers the event. `category` and `name` must be string
/// literals (stored as pointers). Args are serialized immediately; guard
/// expensive arg computation with `if (span.enabled())`.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name);
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool enabled() const { return enabled_; }

  /// Closes the span and buffers the event; further Arg() calls are
  /// ignored. Safe to call more than once.
  void End();

  TraceSpan& Arg(const char* key, int64_t value);
  TraceSpan& Arg(const char* key, uint64_t value);
  TraceSpan& Arg(const char* key, int value);
  TraceSpan& Arg(const char* key, double value);
  TraceSpan& Arg(const char* key, bool value);
  TraceSpan& Arg(const char* key, const char* value);
  TraceSpan& Arg(const char* key, const std::string& value);

 private:
  bool enabled_ = false;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  int lane_ = 0;
  uint64_t span_id_ = 0;
  uint64_t seq_ = 0;
  uint64_t start_us_ = 0;
  /// key -> already-serialized JSON value text.
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace monsoon::obs

#endif  // MONSOON_OBS_TRACE_H_
