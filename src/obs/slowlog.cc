#include "obs/slowlog.h"

#include <sstream>
#include <utility>

#include "obs/json.h"

namespace monsoon::obs {

SlowQueryLog::SlowQueryLog(std::string path, uint64_t slow_us)
    : path_(std::move(path)), slow_us_(slow_us) {}

Status SlowQueryLog::Open() {
  MutexLock lock(log_mu_);
  out_.open(path_, std::ios::app);
  if (!out_) {
    return Status::Internal("cannot open slow-query log '" + path_ + "'");
  }
  opened_ = true;
  return Status::OK();
}

void SlowQueryLog::Log(const SlowLogEntry& entry) {
  if (!opened_) return;
  std::ostringstream line;
  JsonWriter w(line);
  w.BeginObject();
  w.KV("sql", entry.sql);
  w.KV("fingerprint", entry.fingerprint);
  w.KV("reason", entry.reason);
  w.KV("status", entry.status);
  w.KV("elapsed_us", entry.elapsed_us);
  w.KV("result_rows", entry.result_rows);
  w.KV("objects_processed", entry.objects_processed);
  w.KV("work_units", entry.work_units);
  w.Key("udf_cache");
  w.BeginObject();
  w.KV("hits", entry.udf_cache_hits);
  w.KV("misses", entry.udf_cache_misses);
  w.EndObject();
  w.KV("degraded", entry.degraded);
  if (!entry.degraded_reasons.empty()) {
    w.Key("degraded_reasons");
    w.BeginArray();
    for (const std::string& reason : entry.degraded_reasons) w.String(reason);
    w.EndArray();
  }
  if (!entry.trace_path.empty()) w.KV("trace", entry.trace_path);
  w.EndObject();
  MutexLock lock(log_mu_);
  out_ << line.str() << "\n";
  out_.flush();
  ++entries_;
}

uint64_t SlowQueryLog::entries_written() const {
  MutexLock lock(log_mu_);
  return entries_;
}

}  // namespace monsoon::obs
