#include "query/query_spec.h"

#include <sstream>

#include "common/string_util.h"

namespace monsoon {

std::string UdfTerm::ToString() const {
  std::string out = function + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i];
  }
  out += ")";
  return out;
}

std::string Predicate::ToString() const {
  if (kind == Kind::kSelection) {
    return left.ToString() + " = " + constant.ToString();
  }
  return left.ToString() + (equality ? " = " : " <> ") + right->ToString();
}

StatusOr<int> QuerySpec::AddRelation(std::string alias, std::string table_name) {
  for (const auto& rel : relations_) {
    if (rel.alias == alias) {
      return Status::AlreadyExists("relation alias '" + alias + "' already used");
    }
  }
  if (relations_.size() >= 64) {
    return Status::OutOfRange("at most 64 relations per query");
  }
  relations_.push_back(RelationRef{std::move(alias), std::move(table_name)});
  return static_cast<int>(relations_.size()) - 1;
}

StatusOr<int> QuerySpec::RelationIndex(const std::string& alias) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].alias == alias) return static_cast<int>(i);
  }
  return Status::NotFound("no relation with alias '" + alias + "'");
}

StatusOr<UdfTerm> QuerySpec::MakeTerm(std::string function,
                                      std::vector<std::string> args) {
  UdfTerm term;
  term.term_id = next_term_id_++;
  term.function = std::move(function);
  term.args = std::move(args);
  for (const auto& arg : term.args) {
    size_t dot = arg.find('.');
    if (dot == std::string::npos) {
      return Status::InvalidArgument("attribute '" + arg +
                                     "' must be qualified as alias.column");
    }
    MONSOON_ASSIGN_OR_RETURN(int rel, RelationIndex(arg.substr(0, dot)));
    term.rels.Add(rel);
  }
  if (term.rels.empty()) {
    return Status::InvalidArgument("UDF term '" + term.function +
                                   "' references no relation");
  }
  return term;
}

Status QuerySpec::AddJoinPredicate(UdfTerm left, UdfTerm right, bool equality) {
  if (predicates_.size() >= 64) return Status::OutOfRange("at most 64 predicates");
  Predicate pred;
  pred.pred_id = static_cast<int>(predicates_.size());
  pred.kind = Predicate::Kind::kJoin;
  pred.left = std::move(left);
  pred.right = std::move(right);
  pred.equality = equality;
  predicates_.push_back(std::move(pred));
  return Status::OK();
}

Status QuerySpec::AddSelectionPredicate(UdfTerm term, Value constant) {
  if (predicates_.size() >= 64) return Status::OutOfRange("at most 64 predicates");
  if (term.rels.count() != 1) {
    return Status::InvalidArgument(
        "selection predicate must reference exactly one relation: " + term.ToString());
  }
  Predicate pred;
  pred.pred_id = static_cast<int>(predicates_.size());
  pred.kind = Predicate::Kind::kSelection;
  pred.left = std::move(term);
  pred.constant = std::move(constant);
  predicates_.push_back(std::move(pred));
  return Status::OK();
}

RelSet QuerySpec::AllRelations() const {
  RelSet all;
  for (int i = 0; i < num_relations(); ++i) all.Add(i);
  return all;
}

uint64_t QuerySpec::AllPredicatesMask() const {
  if (predicates_.empty()) return 0;
  if (predicates_.size() >= 64) return ~uint64_t{0};
  return (uint64_t{1} << predicates_.size()) - 1;
}

std::vector<int> QuerySpec::SelectionPredicatesOn(int rel) const {
  std::vector<int> out;
  for (const auto& pred : predicates_) {
    if (pred.kind == Predicate::Kind::kSelection && pred.rels() == RelSet::Single(rel)) {
      out.push_back(pred.pred_id);
    }
  }
  return out;
}

std::vector<const UdfTerm*> QuerySpec::AllTerms() const {
  std::vector<const UdfTerm*> out;
  for (const auto& pred : predicates_) {
    out.push_back(&pred.left);
    if (pred.right.has_value()) out.push_back(&*pred.right);
  }
  return out;
}

Status QuerySpec::Validate() const {
  if (relations_.empty()) return Status::InvalidArgument("query has no relations");
  RelSet all = AllRelations();
  for (const auto& pred : predicates_) {
    if (!all.ContainsAll(pred.rels())) {
      return Status::Internal("predicate references unknown relation: " +
                              pred.ToString());
    }
    if (pred.kind == Predicate::Kind::kJoin && !pred.right.has_value()) {
      return Status::Internal("join predicate missing right term: " + pred.ToString());
    }
  }
  return Status::OK();
}

std::string QuerySpec::ToString() const {
  std::ostringstream out;
  out << "SELECT * FROM ";
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (i > 0) out << ", ";
    out << relations_[i].table_name;
    if (relations_[i].alias != relations_[i].table_name) out << " " << relations_[i].alias;
  }
  if (!predicates_.empty()) {
    out << " WHERE ";
    for (size_t i = 0; i < predicates_.size(); ++i) {
      if (i > 0) out << " AND ";
      out << predicates_[i].ToString();
    }
  }
  return out.str();
}

}  // namespace monsoon
