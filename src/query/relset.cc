#include "query/relset.h"

namespace monsoon {

std::vector<int> RelSet::Indices() const {
  std::vector<int> out;
  uint64_t m = mask_;
  while (m != 0) {
    int idx = __builtin_ctzll(m);
    out.push_back(idx);
    m &= m - 1;
  }
  return out;
}

std::string RelSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int idx : Indices()) {
    if (!first) out += ",";
    out += std::to_string(idx);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace monsoon
