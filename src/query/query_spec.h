#ifndef MONSOON_QUERY_QUERY_SPEC_H_
#define MONSOON_QUERY_QUERY_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/relset.h"
#include "query/select_item.h"
#include "storage/value.h"

namespace monsoon {

/// One relation instance in a query's FROM list. The same base table can
/// appear multiple times under different aliases (the paper's fraud query
/// joins `order` with itself as o1 / o2).
struct RelationRef {
  std::string alias;       // unique within the query ("o1")
  std::string table_name;  // catalog table ("order")
};

/// A UDF application bound to specific attributes — one side of a
/// predicate. term_id is unique within the query and is the key under
/// which distinct-value statistics d(F, r|_s) are stored.
struct UdfTerm {
  int term_id = -1;
  std::string function;           // name in the UdfRegistry
  std::vector<std::string> args;  // qualified attribute names ("o1.items")
  RelSet rels;                    // relations the args reference

  /// "extract_date(o1.when)" rendering.
  std::string ToString() const;
};

/// A conjunct of the WHERE clause, built from the paper's grammar.
/// Join predicates compare two UDF terms; selection predicates compare a
/// term with a constant. `equality` distinguishes '=' from '<>' (the
/// latter only ever acts as a residual filter).
struct Predicate {
  enum class Kind { kJoin, kSelection };

  int pred_id = -1;
  Kind kind = Kind::kJoin;
  UdfTerm left;
  std::optional<UdfTerm> right;  // present iff kind == kJoin
  Value constant;                // used iff kind == kSelection
  bool equality = true;          // false for '<>'

  /// All relations the predicate touches.
  RelSet rels() const {
    RelSet r = left.rels;
    if (right.has_value()) r = r.Union(right->rels);
    return r;
  }

  /// True if this predicate can drive a hash join between expressions
  /// covering exactly one side each: both terms exist, '=' comparison,
  /// and the two sides reference disjoint relation sets.
  bool IsEquiJoin() const {
    return kind == Kind::kJoin && equality && right.has_value() &&
           !left.rels.Intersects(right->rels);
  }

  std::string ToString() const;
};

/// A parsed query: relations + conjunctive WHERE clause. This is the input
/// to every optimizer in the repo. Construction assigns term / predicate
/// ids and resolves alias references; `Validate` checks the spec against
/// the grammar restrictions of Sec. 3.1.
class QuerySpec {
 public:
  QuerySpec() = default;

  /// Adds a relation; returns its index. Alias must be unique.
  StatusOr<int> AddRelation(std::string alias, std::string table_name);

  /// Builds a UdfTerm, resolving each "alias.column" argument to the
  /// relations added so far. Fails on unknown aliases.
  StatusOr<UdfTerm> MakeTerm(std::string function, std::vector<std::string> args);

  /// Adds `left = right` (or `left <> right` when equality = false).
  Status AddJoinPredicate(UdfTerm left, UdfTerm right, bool equality = true);

  /// Adds `term = constant`.
  Status AddSelectionPredicate(UdfTerm term, Value constant);

  int num_relations() const { return static_cast<int>(relations_.size()); }
  const std::vector<RelationRef>& relations() const { return relations_; }
  const RelationRef& relation(int i) const { return relations_[i]; }
  StatusOr<int> RelationIndex(const std::string& alias) const;

  int num_predicates() const { return static_cast<int>(predicates_.size()); }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  const Predicate& predicate(int i) const { return predicates_[i]; }

  /// Mask over all relations.
  RelSet AllRelations() const;
  /// Mask over all predicate ids (bit i = predicate i).
  uint64_t AllPredicatesMask() const;

  /// Predicate ids whose kind is kSelection and whose relations are
  /// exactly {rel}.
  std::vector<int> SelectionPredicatesOn(int rel) const;

  /// Every UdfTerm in the query (left and right of each predicate).
  std::vector<const UdfTerm*> AllTerms() const;

  /// The SELECT list (defaults to a single `*`). Applied by
  /// exec/projection.h as a final pass over the joined result; it plays
  /// no role in plan search.
  const std::vector<SelectItem>& select_items() const { return select_items_; }
  void set_select_items(std::vector<SelectItem> items) {
    select_items_ = std::move(items);
  }

  /// Sanity checks: >= 1 relation, every predicate references known
  /// relations, selection terms reference exactly one side.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::vector<RelationRef> relations_;
  std::vector<Predicate> predicates_;
  std::vector<SelectItem> select_items_ = {SelectItem::Star()};
  int next_term_id_ = 0;
};

}  // namespace monsoon

#endif  // MONSOON_QUERY_QUERY_SPEC_H_
