#include "query/select_item.h"

namespace monsoon {

std::string SelectItem::ToString() const {
  switch (kind) {
    case Kind::kStar:
      return "*";
    case Kind::kAttribute:
      return attribute;
    case Kind::kCount:
      return "COUNT(" + (attribute.empty() ? "*" : attribute) + ")";
    case Kind::kSum:
      return "SUM(" + attribute + ")";
    case Kind::kMin:
      return "MIN(" + attribute + ")";
    case Kind::kMax:
      return "MAX(" + attribute + ")";
    case Kind::kAvg:
      return "AVG(" + attribute + ")";
  }
  return "?";
}

}  // namespace monsoon
