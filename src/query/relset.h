#ifndef MONSOON_QUERY_RELSET_H_
#define MONSOON_QUERY_RELSET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace monsoon {

/// A set of relations in a query, as a 64-bit mask over relation indices.
/// Queries in the paper's benchmarks have at most ~10 relations, so 64 is
/// generous. Used everywhere expressions are identified: plan nodes,
/// statistics keys, MDP states.
class RelSet {
 public:
  constexpr RelSet() : mask_(0) {}
  constexpr explicit RelSet(uint64_t mask) : mask_(mask) {}

  static RelSet Single(int index) {
    MONSOON_DCHECK(index >= 0 && index < 64) << "relation index " << index;
    return RelSet(uint64_t{1} << index);
  }

  uint64_t mask() const { return mask_; }
  bool empty() const { return mask_ == 0; }
  int count() const { return __builtin_popcountll(mask_); }

  bool Contains(int index) const { return (mask_ >> index) & 1; }
  bool ContainsAll(RelSet other) const { return (mask_ & other.mask_) == other.mask_; }
  bool Intersects(RelSet other) const { return (mask_ & other.mask_) != 0; }

  RelSet Union(RelSet other) const { return RelSet(mask_ | other.mask_); }
  RelSet Intersect(RelSet other) const { return RelSet(mask_ & other.mask_); }
  RelSet Minus(RelSet other) const { return RelSet(mask_ & ~other.mask_); }

  void Add(int index) { mask_ |= uint64_t{1} << index; }

  /// Indices present, ascending.
  std::vector<int> Indices() const;

  bool operator==(const RelSet& other) const { return mask_ == other.mask_; }
  bool operator!=(const RelSet& other) const { return mask_ != other.mask_; }
  bool operator<(const RelSet& other) const { return mask_ < other.mask_; }

  /// "{0,2,3}" style rendering (indices only; callers map to aliases).
  std::string ToString() const;

 private:
  uint64_t mask_;
};

}  // namespace monsoon

#endif  // MONSOON_QUERY_RELSET_H_
