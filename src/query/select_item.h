#ifndef MONSOON_QUERY_SELECT_ITEM_H_
#define MONSOON_QUERY_SELECT_ITEM_H_

#include <string>

namespace monsoon {

/// One item of a SELECT list: a bare qualified attribute, `*`, or an
/// aggregate over an attribute / `*`. The paper's system is a join-order
/// optimizer, so projection and aggregation are applied as a final pass
/// over the joined relation — they never participate in plan search.
struct SelectItem {
  enum class Kind { kStar, kAttribute, kCount, kSum, kMin, kMax, kAvg };

  Kind kind = Kind::kStar;
  std::string attribute;  // qualified "alias.column"; empty for kStar/COUNT(*)

  static SelectItem Star() { return SelectItem{}; }
  static SelectItem Attribute(std::string attr) {
    return SelectItem{Kind::kAttribute, std::move(attr)};
  }
  static SelectItem Aggregate(Kind kind, std::string attr) {
    return SelectItem{kind, std::move(attr)};
  }

  bool IsAggregate() const {
    return kind != Kind::kStar && kind != Kind::kAttribute;
  }

  std::string ToString() const;
};

}  // namespace monsoon

#endif  // MONSOON_QUERY_SELECT_ITEM_H_
