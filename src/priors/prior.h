#ifndef MONSOON_PRIORS_PRIOR_H_
#define MONSOON_PRIORS_PRIOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"

namespace monsoon {

/// The seven candidate priors of Sec. 5.2. All model
/// f(d(F, r|_s) | c(r), c(s)) — the number of distinct values a UDF term
/// produces over expression r, in the context of a join with s.
enum class PriorKind {
  kUniform,
  kIncreasing,    // Beta(3, 1) scaled by c(r): optimistic, many distincts
  kDecreasing,    // Beta(1, 3): pessimistic, few distincts
  kUShaped,       // Beta(0.5, 0.5)
  kLowBiased,     // Beta(2, 10)
  kSpikeAndSlab,  // 80% uniform + 10% spike at c(r) + 10% spike at c(s)
  kDiscrete,      // always 0.1 * c(r)
};

/// All seven kinds, in the paper's Table 2 order.
const std::vector<PriorKind>& AllPriorKinds();

const char* PriorKindToString(PriorKind kind);

/// A prior over unknown distinct-value counts. Stateless and thread-
/// compatible; randomness comes from the caller's RNG.
class Prior {
 public:
  virtual ~Prior() = default;

  virtual PriorKind kind() const = 0;
  std::string name() const { return PriorKindToString(kind()); }

  /// Draws d ~ f(d | c(r), c(s)). The result is clamped to [1, c(r)]
  /// (a distinct count is at least 1 and at most the row count).
  /// Selection predicates use c_s == c_r (the prior on d(F, R) | c(R)).
  virtual double Sample(Pcg32& rng, double c_r, double c_s) const = 0;

  /// Density of the *fraction* d / c(r) at x in (0, 1), for the five
  /// continuous priors plotted in Figure 2. nullopt for priors with point
  /// masses (spike-and-slab's spikes, discrete).
  virtual std::optional<double> DensityAt(double x) const;
};

/// Factory for a prior of the given kind.
std::unique_ptr<Prior> MakePrior(PriorKind kind);

/// Beta(a, b) probability density at x in (0, 1).
double BetaPdf(double x, double a, double b);

}  // namespace monsoon

#endif  // MONSOON_PRIORS_PRIOR_H_
