#include "priors/prior.h"

#include <algorithm>
#include <cmath>

namespace monsoon {

const std::vector<PriorKind>& AllPriorKinds() {
  static const std::vector<PriorKind>* kinds = new std::vector<PriorKind>{  // NOLINT(monsoon-raw-new): leaked singleton
      PriorKind::kUniform,    PriorKind::kIncreasing,   PriorKind::kDecreasing,
      PriorKind::kUShaped,    PriorKind::kLowBiased,    PriorKind::kSpikeAndSlab,
      PriorKind::kDiscrete,
  };
  return *kinds;
}

const char* PriorKindToString(PriorKind kind) {
  switch (kind) {
    case PriorKind::kUniform:
      return "Uniform";
    case PriorKind::kIncreasing:
      return "Increasing";
    case PriorKind::kDecreasing:
      return "Decreasing";
    case PriorKind::kUShaped:
      return "U-Shaped";
    case PriorKind::kLowBiased:
      return "Low Biased";
    case PriorKind::kSpikeAndSlab:
      return "Spike and Slab";
    case PriorKind::kDiscrete:
      return "Discrete";
  }
  return "Unknown";
}

double BetaPdf(double x, double a, double b) {
  if (x <= 0.0 || x >= 1.0) return 0.0;
  double log_beta = std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
  return std::exp((a - 1.0) * std::log(x) + (b - 1.0) * std::log(1.0 - x) - log_beta);
}

std::optional<double> Prior::DensityAt(double) const { return std::nullopt; }

namespace {

double Clamp(double d, double c_r) {
  return std::min(std::max(d, 1.0), std::max(c_r, 1.0));
}

class UniformPrior : public Prior {
 public:
  PriorKind kind() const override { return PriorKind::kUniform; }
  double Sample(Pcg32& rng, double c_r, double /*c_s*/) const override {
    return Clamp(std::ceil(rng.NextDouble() * c_r), c_r);
  }
  std::optional<double> DensityAt(double x) const override {
    return (x > 0.0 && x < 1.0) ? std::optional<double>(1.0) : std::optional<double>(0.0);
  }
};

class BetaPrior : public Prior {
 public:
  BetaPrior(PriorKind kind, double a, double b) : kind_(kind), a_(a), b_(b) {}
  PriorKind kind() const override { return kind_; }
  double Sample(Pcg32& rng, double c_r, double /*c_s*/) const override {
    return Clamp(std::ceil(SampleBeta(rng, a_, b_) * c_r), c_r);
  }
  std::optional<double> DensityAt(double x) const override {
    return BetaPdf(x, a_, b_);
  }

 private:
  PriorKind kind_;
  double a_;
  double b_;
};

class SpikeAndSlabPrior : public Prior {
 public:
  PriorKind kind() const override { return PriorKind::kSpikeAndSlab; }
  double Sample(Pcg32& rng, double c_r, double c_s) const override {
    double u = rng.NextDouble();
    if (u < 0.8) {
      // Slab: uniform over [1, c(r)].
      return Clamp(std::ceil(rng.NextDouble() * c_r), c_r);
    }
    if (u < 0.9) {
      // Spike at c(r): F is a key of r (foreign-key join from s into r).
      return Clamp(c_r, c_r);
    }
    // Spike at c(s): F is a foreign key of r referencing s.
    return Clamp(c_s, c_r);
  }
};

class DiscretePrior : public Prior {
 public:
  PriorKind kind() const override { return PriorKind::kDiscrete; }
  double Sample(Pcg32& /*rng*/, double c_r, double /*c_s*/) const override {
    return Clamp(0.1 * c_r, c_r);
  }
};

}  // namespace

std::unique_ptr<Prior> MakePrior(PriorKind kind) {
  switch (kind) {
    case PriorKind::kUniform:
      return std::make_unique<UniformPrior>();
    case PriorKind::kIncreasing:
      return std::make_unique<BetaPrior>(PriorKind::kIncreasing, 3.0, 1.0);
    case PriorKind::kDecreasing:
      return std::make_unique<BetaPrior>(PriorKind::kDecreasing, 1.0, 3.0);
    case PriorKind::kUShaped:
      return std::make_unique<BetaPrior>(PriorKind::kUShaped, 0.5, 0.5);
    case PriorKind::kLowBiased:
      return std::make_unique<BetaPrior>(PriorKind::kLowBiased, 2.0, 10.0);
    case PriorKind::kSpikeAndSlab:
      return std::make_unique<SpikeAndSlabPrior>();
    case PriorKind::kDiscrete:
      return std::make_unique<DiscretePrior>();
  }
  return nullptr;
}

}  // namespace monsoon
