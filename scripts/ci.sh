#!/usr/bin/env bash
# CI pipeline: a Release build running the full test suite, then a
# ThreadSanitizer build running the concurrency-sensitive tests, then an
# AddressSanitizer build running the UDF-cache equivalence tests (the
# cache hands out shared_ptr-pinned columns under LRU eviction — exactly
# the lifetime bugs ASan catches). Run from the repository root:
#
#   ./scripts/ci.sh            # all stages
#   ./scripts/ci.sh release    # release build + full ctest only
#   ./scripts/ci.sh tsan       # TSan build + parallel/exec tests only
#   ./scripts/ci.sh asan       # ASan build + cache/exec tests only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

release_stage() {
  echo "=== [1/3] Release build + full test suite ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci-release -j "${JOBS}"
  ctest --test-dir build-ci-release --output-on-failure
}

tsan_stage() {
  echo "=== [2/3] ThreadSanitizer build + concurrency tests ==="
  cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMONSOON_SANITIZE=thread
  cmake --build build-ci-tsan -j "${JOBS}" --target parallel_test exec_test
  # Everything that crosses the src/parallel/ runtime: the pool/TaskGroup/
  # ParallelFor unit tests plus the serial-vs-parallel equivalence suite
  # (morsel scans, partitioned hash join, parallel Σ).
  ./build-ci-tsan/tests/parallel_test
  ./build-ci-tsan/tests/exec_test
}

asan_stage() {
  echo "=== [3/3] AddressSanitizer build + UDF cache tests ==="
  cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMONSOON_SANITIZE=address
  cmake --build build-ci-asan -j "${JOBS}" --target udf_cache_test exec_test
  # The cache-on/off/serial/parallel equivalence suite plus the executor
  # suite: every cached column read (join build/probe, residual filters,
  # Σ passes) and every LRU eviction runs under ASan.
  ./build-ci-asan/tests/udf_cache_test
  ./build-ci-asan/tests/exec_test
}

case "${STAGE}" in
  release) release_stage ;;
  tsan) tsan_stage ;;
  asan) asan_stage ;;
  all)
    release_stage
    tsan_stage
    asan_stage
    ;;
  *)
    echo "usage: $0 [release|tsan|asan|all]" >&2
    exit 2
    ;;
esac

echo "CI passed."
