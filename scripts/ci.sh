#!/usr/bin/env bash
# CI pipeline, eleven stages:
#
#   release  Release build (warnings as errors) + full ctest suite
#   tsan     ThreadSanitizer build + `ctest -L tsan` (concurrency suites)
#   asan     AddressSanitizer build + `ctest -L asan` (lifetime suites)
#   ubsan    UBSan build (-fno-sanitize-recover) + full ctest suite
#   lint     monsoon-lint over src/ tools/ tests/, plus clang-tidy when
#            a clang-tidy binary is on PATH
#   analyze  monsoon-analyze over src/ tools/ tests/: the flow-sensitive
#            CFG passes (must-poll, lock-scope, status-flow, accounting);
#            findings are CI-blocking, plus a self-check that injects one
#            violation per pass and expects the analyzer to catch it
#   obs      observability smoke: quickstart with --trace-out/--report-out,
#            monsoon-trace-check over both artifacts, and the
#            bench_obs_overhead disabled-path gate (BENCH_obs_overhead.json)
#   fault    fault-injection soak under ASan: quickstart over all four
#            workloads at 1% transient UDF faults (every query must finish
#            retried or degraded, never crash), a traced faulty run through
#            monsoon-trace-check, and the bench_fault_overhead
#            disabled-path gate (BENCH_fault_overhead.json)
#   server   query-server smoke: monsoon-serve + concurrent monsoon-client
#            runs — two sessions held mid-query, one more rejected past the
#            admission limit (kUnavailable), one cancelled by client
#            disconnect — then SIGINT drain (pool pending must reach 0)
#            and monsoon-trace-check over the traced run
#   telemetry  live-telemetry smoke: monsoon-serve under load with an
#            injected Σ fault, .metrics scraped through monsoon-top --once
#            and validated as Prometheus exposition, tail sampling keeping
#            exactly the degraded query's trace, and the slow-query log
#            capturing the same query
#   shard    shard-failover soak under ASan: quickstart over all four
#            workloads at shards=4 with 1% shard.exec faults (a seeded
#            shard kill per pass) — every run must recover, never degrade,
#            and its accounting must equal a clean shards=1 run — plus a
#            monsoon-analyze self-check that a per-shard morsel loop
#            without a cancellation poll is caught, and the bench_shard
#            shard-invariance / kill-and-recover gate (BENCH_shard.json)
#
# Run from anywhere in the repository:
#
#   ./scripts/ci.sh            # all stages
#   ./scripts/ci.sh release    # one stage by name
#                              # (release|tsan|asan|ubsan|lint|analyze|obs|
#                              #  fault|server|telemetry|shard)
set -euo pipefail
cd "$(dirname "$0")/.."

# nproc is Linux coreutils; fall back to a safe width elsewhere.
if command -v nproc >/dev/null 2>&1; then
  JOBS="${JOBS:-$(nproc)}"
else
  JOBS="${JOBS:-2}"
fi
STAGE="${1:-all}"

release_stage() {
  echo "=== [1/11] Release build (-Werror) + full test suite ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release -DMONSOON_WERROR=ON
  cmake --build build-ci-release -j "${JOBS}"
  ctest --test-dir build-ci-release --output-on-failure -j "${JOBS}"
}

tsan_stage() {
  echo "=== [2/11] ThreadSanitizer build + concurrency tests ==="
  cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMONSOON_SANITIZE=thread
  cmake --build build-ci-tsan -j "${JOBS}" \
    --target parallel_test exec_test exec_batch_test determinism_test \
    obs_test fault_test server_test
  # Everything that crosses the src/parallel/ runtime: the pool/TaskGroup/
  # ParallelFor unit tests, the serial-vs-parallel equivalence suite
  # (morsel scans, partitioned hash join, parallel Σ), the same-seed
  # cross-run determinism suite, the cancellation stress tests, and the
  # concurrent-session query-server suite.
  ctest --test-dir build-ci-tsan --output-on-failure -L tsan
}

asan_stage() {
  echo "=== [3/11] AddressSanitizer build + UDF cache tests ==="
  cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMONSOON_SANITIZE=address
  cmake --build build-ci-asan -j "${JOBS}" \
    --target udf_cache_test exec_test exec_batch_test fault_test
  # The cache-on/off/serial/parallel equivalence suite plus the executor,
  # batch-execution, and fault suites: every cached column read (join
  # build/probe, residual filters, Σ passes), every selection-vector and
  # Bloom-probe path, every LRU eviction, and every injected-fault error
  # path runs under ASan.
  ctest --test-dir build-ci-asan --output-on-failure -L asan
  # Vectorized-execution smoke: the batch/row sweep must keep rows and
  # accounting bit-identical and hold its speed gates (>= 2x on filtered
  # scans, <= 5% loss on UDF-heavy plans at threads=1). Timing gates need
  # an optimized binary, so this runs from the release build.
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release -DMONSOON_WERROR=ON
  cmake --build build-ci-release -j "${JOBS}" --target bench_exec_batch
  local batch_dir="build-ci-release/batch-smoke"
  mkdir -p "${batch_dir}"
  (cd "${batch_dir}" && ../../build-ci-release/bench/bench_exec_batch)
}

ubsan_stage() {
  echo "=== [4/11] UndefinedBehaviorSanitizer build + full test suite ==="
  # -fno-sanitize-recover=all (set by the CMake option) turns any UB hit
  # into a test failure rather than a log line.
  cmake -B build-ci-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMONSOON_SANITIZE=undefined
  cmake --build build-ci-ubsan -j "${JOBS}"
  ctest --test-dir build-ci-ubsan --output-on-failure -j "${JOBS}"
}

lint_stage() {
  echo "=== [5/11] monsoon-lint + clang-tidy ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release -DMONSOON_WERROR=ON
  cmake --build build-ci-release -j "${JOBS}" --target monsoon-lint
  # Syntactic repo invariants (RNG discipline, accounting isolation,
  # include hygiene, ...): findings are CI-blocking. See tools/lint/rules.h.
  ./build-ci-release/tools/lint/monsoon-lint --root .
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build-ci-release -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    # shellcheck disable=SC2046
    clang-tidy -p build-ci-release --quiet $(git ls-files 'src/*.cc' 'tools/*.cc')
  else
    echo "clang-tidy not found; skipping (monsoon-lint ran)"
  fi
}

analyze_stage() {
  echo "=== [6/11] monsoon-analyze (flow-sensitive CFG passes) ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release -DMONSOON_WERROR=ON
  cmake --build build-ci-release -j "${JOBS}" --target monsoon-analyze
  # Execution invariants the token linter cannot see (cancellation polls on
  # every loop path, lock scopes, Status consumption, append/charge
  # balance): findings are CI-blocking. See tools/analyze/analysis.h.
  ./build-ci-release/tools/analyze/monsoon-analyze --root .
  # Self-check: each pass must catch a deliberately injected violation.
  # A pass that silently stops firing would otherwise rot unnoticed.
  local inject_dir="build-ci-release/analyze-inject"
  rm -rf "${inject_dir}"
  mkdir -p "${inject_dir}/src/exec" "${inject_dir}/src/server"
  cat > "${inject_dir}/src/exec/inject_poll.cc" <<'EOS'
Status Run(ExecContext* ctx, const Table& t) {
  for (size_t i = 0; i < t.num_rows(); ++i) {
    MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(1));
  }
  return Status::OK();
}
EOS
  cat > "${inject_dir}/src/server/inject_lock.cc" <<'EOS'
void Reply() {
  MutexLock lock(sessions_mu_);
  WriteAll(fd, response);
}
EOS
  cat > "${inject_dir}/src/exec/inject_status.cc" <<'EOS'
void Close() {
  Status s = conn.Close();
  log("closed");
}
EOS
  cat > "${inject_dir}/src/exec/inject_accounting.cc" <<'EOS'
Status Emit(Table* dst, ExecContext* ctx) {
  dst->AppendRangeFrom(src, 0, n);
  return Status::OK();
}
EOS
  local pass file found
  for pass in must-poll lock-scope status-flow accounting; do
    case "${pass}" in
      must-poll) file="src/exec/inject_poll.cc" ;;
      lock-scope) file="src/server/inject_lock.cc" ;;
      status-flow) file="src/exec/inject_status.cc" ;;
      accounting) file="src/exec/inject_accounting.cc" ;;
    esac
    # The analyzer exits 1 on findings — the expected outcome here — so
    # capture its output instead of piping (pipefail would fail the if).
    found="$(./build-ci-release/tools/analyze/monsoon-analyze \
        --root "${inject_dir}" "${file}" || true)"
    if echo "${found}" | grep -q "monsoon-analyze-${pass}"; then
      echo "self-check: ${pass} caught the injected violation"
    else
      echo "FAIL: monsoon-analyze-${pass} missed an injected violation" >&2
      exit 1
    fi
  done
}

obs_stage() {
  echo "=== [7/11] Observability smoke: trace + run report + overhead gate ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release -DMONSOON_WERROR=ON
  cmake --build build-ci-release -j "${JOBS}" \
    --target quickstart monsoon-trace-check bench_obs_overhead
  local obs_dir="build-ci-release/obs-smoke"
  mkdir -p "${obs_dir}"
  # --threads=2 exercises the pool lanes so the trace must contain all four
  # span categories (mdp, mcts, exec, pool).
  ./build-ci-release/examples/quickstart --threads=2 \
    --trace-out="${obs_dir}/trace.json" --report-out="${obs_dir}/report.json"
  ./build-ci-release/tools/obs/monsoon-trace-check \
    --trace "${obs_dir}/trace.json" --expect-pool \
    --report "${obs_dir}/report.json"
  # Fails when the disabled tracing path stops being branch-cheap.
  ./build-ci-release/bench/bench_obs_overhead "${obs_dir}/BENCH_obs_overhead.json"
}

fault_stage() {
  echo "=== [8/11] Fault-injection soak (ASan) + overhead gate ==="
  cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMONSOON_SANITIZE=address
  cmake --build build-ci-asan -j "${JOBS}" \
    --target quickstart monsoon-trace-check
  # The overhead gate measures the uninstrumented fast path, so it runs
  # from the release build; ASan would tax the relaxed load itself.
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release -DMONSOON_WERROR=ON
  cmake --build build-ci-release -j "${JOBS}" --target bench_fault_overhead
  local fault_dir="build-ci-asan/fault-soak"
  mkdir -p "${fault_dir}"
  # 1% transient faults across every UDF evaluation point, plus forced Σ
  # failures: every query over all four workloads must complete (retried
  # or degraded, never crashed — quickstart exits non-zero on any hard
  # error), and degradation must reach the run report.
  local spec='exec.udf_eval*=0.01;exec.sigma.pass=1:permanent'
  for wl in tpch imdb ott udf; do
    ./build-ci-asan/examples/quickstart --workload="${wl}" \
      --faults="${spec}" --report-out="${fault_dir}/report_${wl}.json"
  done
  if ! grep -l -q '"degraded":true' "${fault_dir}"/report_*.json; then
    echo "FAIL: no degraded query in any fault-soak run report" >&2
    exit 1
  fi
  # A traced faulty run must still produce a well-formed trace + report.
  ./build-ci-asan/examples/quickstart --threads=2 --faults="${spec}" \
    --trace-out="${fault_dir}/trace.json" \
    --report-out="${fault_dir}/report_demo.json"
  ./build-ci-asan/tools/obs/monsoon-trace-check \
    --trace "${fault_dir}/trace.json" --expect-pool \
    --report "${fault_dir}/report_demo.json"
  # Fails when the disabled MONSOON_FAULT_POINT path stops being
  # branch-cheap.
  ./build-ci-release/bench/bench_fault_overhead \
    "${fault_dir}/BENCH_fault_overhead.json"
}

server_stage() {
  echo "=== [9/11] Query-server smoke: admission, cancellation, drain ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release -DMONSOON_WERROR=ON
  cmake --build build-ci-release -j "${JOBS}" \
    --target monsoon-serve monsoon-client monsoon-trace-check
  local server_dir="build-ci-release/server-smoke"
  mkdir -p "${server_dir}"
  local serve="./build-ci-release/examples/monsoon-serve"
  local client="./build-ci-release/tools/client/monsoon-client"
  # 200k MCTS iterations stretch each session to multiple seconds, giving
  # the overflow / disconnect clients a wide deterministic window while
  # both admission slots are provably occupied. Shared state is off so the
  # second heavy query cannot warm-start and finish early.
  local sql='SELECT * FROM docs d, docinfo di, authorinfo ai WHERE extract_id(d.d_text) = di.di_key AND extract_author(d.d_text) = ai.ai_key'
  "${serve}" --workload=udf --max-sessions=2 --queue-depth=0 \
    --iterations=200000 --no-shared-state \
    --trace-out="${server_dir}/trace.json" \
    > "${server_dir}/serve.log" 2>&1 &
  local serve_pid=$!
  local port=""
  for _ in $(seq 1 200); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "${server_dir}/serve.log" | head -1)"
    [ -n "${port}" ] && break
    sleep 0.1
  done
  if [ -z "${port}" ]; then
    echo "FAIL: monsoon-serve never reported its port" >&2
    cat "${server_dir}/serve.log" >&2
    exit 1
  fi
  # Protocol smoke first: ping + stats round-trip on a control connection.
  "${client}" --port="${port}" --ping --stats --quiet
  # Session A holds slot 1 to completion; session C holds slot 2 until its
  # client disconnects after 4s, which must cancel the query server-side.
  "${client}" --port="${port}" --query="${sql}" --expect=OK --quiet &
  local client_a=$!
  "${client}" --port="${port}" --query="${sql}" --cancel-after-ms=4000 \
    --quiet &
  local client_c=$!
  sleep 1.5
  # Both slots busy, queue depth 0: one more client must be turned away
  # with a structured kUnavailable, not an error or a hang.
  "${client}" --port="${port}" --query="${sql}" --expect=Unavailable --quiet
  wait "${client_c}"
  wait "${client_a}"
  # Graceful drain on SIGINT: the serve process must exit 0, report zero
  # leaked pool tasks, and have seen both the rejection and the
  # disconnect-triggered cancellation.
  kill -INT "${serve_pid}"
  wait "${serve_pid}"
  grep -q 'pool pending=0' "${server_dir}/serve.log"
  grep -q 'rejected=[1-9]' "${server_dir}/serve.log"
  grep -q 'cancelled=[1-9]' "${server_dir}/serve.log"
  # The traced run must carry the usual span categories (sessions run as
  # pool tasks, hence --expect-pool) alongside the server's own spans.
  ./build-ci-release/tools/obs/monsoon-trace-check \
    --trace "${server_dir}/trace.json" --expect-pool
}

telemetry_stage() {
  echo "=== [10/11] Telemetry: exposition, tail sampling, slow log, top ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release -DMONSOON_WERROR=ON
  cmake --build build-ci-release -j "${JOBS}" \
    --target monsoon-serve monsoon-client monsoon-top monsoon-trace-check
  local telem_dir="build-ci-release/telemetry-smoke"
  rm -rf "${telem_dir}"
  mkdir -p "${telem_dir}/tail"
  local serve="./build-ci-release/examples/monsoon-serve"
  local client="./build-ci-release/tools/client/monsoon-client"
  local top="./build-ci-release/tools/top/monsoon-top"
  # Full telemetry stack: 50 ms sampler ticks, tail sampling with an
  # unreachable slow threshold (only degraded/faulted queries keep traces),
  # a slow log at threshold 0 (logs only degraded/cancelled/failed), and a
  # permanent Σ fault. Shared state is off so every session plans cold and
  # which queries degrade stays deterministic: the three-way obscured join
  # below never executes a Σ pass under these options (clean), while the
  # single-table obscured filter always does (degraded).
  "${serve}" --workload=udf --max-sessions=4 --iterations=120 \
    --no-shared-state --telemetry-ms=50 \
    --trace-tail-ms=3600000 --trace-tail-dir="${telem_dir}/tail" \
    --slow-log="${telem_dir}/slow.jsonl" \
    --faults='exec.sigma.pass=1:permanent' \
    > "${telem_dir}/serve.log" 2>&1 &
  local serve_pid=$!
  local port=""
  for _ in $(seq 1 200); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "${telem_dir}/serve.log" | head -1)"
    [ -n "${port}" ] && break
    sleep 0.1
  done
  if [ -z "${port}" ]; then
    echo "FAIL: monsoon-serve never reported its port" >&2
    cat "${telem_dir}/serve.log" >&2
    exit 1
  fi
  local clean_sql='SELECT * FROM docs d, docinfo di, authorinfo ai WHERE extract_id(d.d_text) = di.di_key AND extract_author(d.d_text) = ai.ai_key'
  local degraded_sql="SELECT * FROM docs d WHERE extract_date(d.d_when) = '2019-01-11'"
  # Load: four clean sessions feed the latency histogram and the sampler
  # window, then the fault-injected query completes degraded.
  for _ in 1 2 3 4; do
    "${client}" --port="${port}" --query="${clean_sql}" --expect=OK --quiet
  done
  "${client}" --port="${port}" --query="${degraded_sql}" --expect=OK --quiet
  # Scrape .metrics through monsoon-top (--once validates the exposition
  # client-side and renders one dashboard frame; --metrics-out keeps the
  # raw scrape for the checks below).
  "${top}" --port="${port}" --once --metrics-out="${telem_dir}/metrics.txt"
  # The scrape is well-formed Prometheus text, the degraded run reached the
  # registry, and the sampler window has real latency percentiles.
  ./build-ci-release/tools/obs/monsoon-trace-check \
    --exposition "${telem_dir}/metrics.txt"
  grep -q '^monsoon_server_degraded_total 1$' "${telem_dir}/metrics.txt"
  grep -q '^monsoon_server_sessions_total 5$' "${telem_dir}/metrics.txt"
  # Tail sampling kept exactly the degraded query's trace: every file in
  # the tail dir validates in --tail mode with reason "degraded" (the four
  # clean queries were dropped — one kept trace total).
  ./build-ci-release/tools/obs/monsoon-trace-check \
    --expect-sampled "${telem_dir}/tail" --reason degraded
  [ "$(ls "${telem_dir}/tail" | wc -l)" -eq 1 ]
  # The slow log captured the same query — one entry, reason degraded,
  # pointing at the kept trace file.
  [ "$(wc -l < "${telem_dir}/slow.jsonl")" -eq 1 ]
  grep -q '"reason":"degraded"' "${telem_dir}/slow.jsonl"
  grep -q '"trace":"[^"]*tail-[0-9]*-degraded\.json"' "${telem_dir}/slow.jsonl"
  # Graceful drain; the shutdown line reports the telemetry tallies.
  kill -INT "${serve_pid}"
  wait "${serve_pid}"
  grep -q 'pool pending=0' "${telem_dir}/serve.log"
}

shard_stage() {
  echo "=== [11/11] Shard failover soak (ASan) + analyze self-check + bench ==="
  cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMONSOON_SANITIZE=address
  cmake --build build-ci-asan -j "${JOBS}" --target quickstart
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release -DMONSOON_WERROR=ON
  cmake --build build-ci-release -j "${JOBS}" \
    --target bench_shard monsoon-analyze
  local shard_dir="build-ci-asan/shard-soak"
  rm -rf "${shard_dir}"
  mkdir -p "${shard_dir}"
  # One line per query: the status always, plus the accounting scalars
  # that must be shard- and failover-invariant when the query completes
  # OK — including shard_failures, which pins the recovered run to zero
  # shards lost (the clean shards=1 side is structurally zero). Budget-
  # exhausted (TO) queries contribute status only: partial accounting is
  # documented as nondeterministic (the budget trips at morsel/shard
  # granularity), and their shards legitimately record non-transient
  # ResourceExhausted failures. udf_cache hit/miss and shard_retries are
  # deliberately excluded: shard-range cache keys are a different key
  # population, and retries are exactly what differs on a recovered run.
  acct() {
    sed 's/{"query":/\n{"query":/g' "$1" | tail -n +2 | while IFS= read -r q; do
      if printf '%s' "${q}" | grep -q '"status":"ok"'; then
        printf '%s' "${q}" | grep -o \
          '"\(status\|result_rows\|objects_processed\|work_units\|execute_rounds\|stats_collections\|degraded\|shard_failures\)":"\?[A-Za-z0-9]*"\?' \
          | tr '\n' ' '
        echo
      else
        printf '%s' "${q}" | grep -o '"status":"[^"]*"' | head -1
      fi
    done
  }
  # Fault draws are a pure function of (seed, point, coord=shard,
  # attempt): seed 4 at p=0.01 fires exactly shard 2's attempt 0 and
  # clears its retry, so EVERY sharded pass in every workload kills one
  # shard once and the supervisor must recover it — deterministically,
  # never exhausting the retry budget.
  local seed=4
  local fired=0
  for wl in tpch imdb ott udf; do
    ./build-ci-asan/examples/quickstart --workload="${wl}" \
      --report-out="${shard_dir}/clean_${wl}.json"
    MONSOON_FAULT_SEED="${seed}" \
      ./build-ci-asan/examples/quickstart --workload="${wl}" --shards=4 \
      --faults='shard.exec=0.01' \
      --report-out="${shard_dir}/shard_${wl}.json"
    if grep -q '"shard_retries":[1-9]' "${shard_dir}/shard_${wl}.json"; then
      fired=1
    fi
    # The recovered shards=4 run must match the clean shards=1 run query
    # for query: same status sequence, and for every OK query the same
    # accounting with zero failed shards (recovered, never degraded).
    if ! diff <(acct "${shard_dir}/clean_${wl}.json") \
              <(acct "${shard_dir}/shard_${wl}.json"); then
      echo "FAIL: ${wl}: recovered shards=4 accounting differs from the" \
           "clean shards=1 run" >&2
      exit 1
    fi
    echo "shard soak: ${wl} recovered with clean-run-identical accounting"
  done
  if [ "${fired}" -ne 1 ]; then
    echo "FAIL: the seeded shard kill never fired — the soak proved nothing" >&2
    exit 1
  fi
  # The shipped per-shard morsel loops must satisfy must-poll...
  ./build-ci-release/tools/analyze/monsoon-analyze --root . \
    src/shard/shard.cc src/exec/executor.cc
  # ...and the pass must still CATCH a per-shard loop that drops its
  # cancellation poll (same self-check contract as the analyze stage).
  local inject_dir="build-ci-asan/shard-inject"
  rm -rf "${inject_dir}"
  mkdir -p "${inject_dir}/src/exec"
  cat > "${inject_dir}/src/exec/inject_shard_poll.cc" <<'EOS'
Status RunShards(ExecContext* ctx, const ShardMap& map, const Table& t) {
  for (size_t s = 0; s < map.num_shards(); ++s) {
    for (size_t i = map.begin(s); i < map.end(s); ++i) {
      MONSOON_RETURN_IF_ERROR(ctx->ChargeWork(1));
    }
  }
  return Status::OK();
}
EOS
  local found
  found="$(./build-ci-release/tools/analyze/monsoon-analyze \
      --root "${inject_dir}" src/exec/inject_shard_poll.cc || true)"
  if echo "${found}" | grep -q "monsoon-analyze-must-poll"; then
    echo "self-check: must-poll caught the poll-free per-shard loop"
  else
    echo "FAIL: monsoon-analyze-must-poll missed a per-shard morsel loop" \
         "without a cancellation poll" >&2
    exit 1
  fi
  # Shard sweep + kill-and-recover gate; hard-fails unless every arm's
  # outputs equal shards=1 and the kill arm recovered (BENCH_shard.json).
  local bench_dir="build-ci-release/shard-bench"
  mkdir -p "${bench_dir}"
  (cd "${bench_dir}" && ../../build-ci-release/bench/bench_shard)
}

case "${STAGE}" in
  release) release_stage ;;
  tsan) tsan_stage ;;
  asan) asan_stage ;;
  ubsan) ubsan_stage ;;
  lint) lint_stage ;;
  analyze) analyze_stage ;;
  obs) obs_stage ;;
  fault) fault_stage ;;
  server) server_stage ;;
  telemetry) telemetry_stage ;;
  shard) shard_stage ;;
  all)
    release_stage
    tsan_stage
    asan_stage
    ubsan_stage
    lint_stage
    analyze_stage
    obs_stage
    fault_stage
    server_stage
    telemetry_stage
    shard_stage
    ;;
  *)
    echo "usage: $0 [release|tsan|asan|ubsan|lint|analyze|obs|fault|server|telemetry|shard|all]" >&2
    exit 2
    ;;
esac

echo "CI passed."
