#!/usr/bin/env bash
# CI pipeline: a Release build running the full test suite, then a
# ThreadSanitizer build running the concurrency-sensitive tests. Run from
# the repository root:
#
#   ./scripts/ci.sh            # both stages
#   ./scripts/ci.sh release    # release build + full ctest only
#   ./scripts/ci.sh tsan       # TSan build + parallel/exec tests only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

release_stage() {
  echo "=== [1/2] Release build + full test suite ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci-release -j "${JOBS}"
  ctest --test-dir build-ci-release --output-on-failure
}

tsan_stage() {
  echo "=== [2/2] ThreadSanitizer build + concurrency tests ==="
  cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMONSOON_SANITIZE=thread
  cmake --build build-ci-tsan -j "${JOBS}" --target parallel_test exec_test
  # Everything that crosses the src/parallel/ runtime: the pool/TaskGroup/
  # ParallelFor unit tests plus the serial-vs-parallel equivalence suite
  # (morsel scans, partitioned hash join, parallel Σ).
  ./build-ci-tsan/tests/parallel_test
  ./build-ci-tsan/tests/exec_test
}

case "${STAGE}" in
  release) release_stage ;;
  tsan) tsan_stage ;;
  all)
    release_stage
    tsan_stage
    ;;
  *)
    echo "usage: $0 [release|tsan|all]" >&2
    exit 2
    ;;
esac

echo "CI passed."
