#!/usr/bin/env bash
# Fast pre-commit check: build and run the two static-analysis tools
# (monsoon-lint, monsoon-analyze) over the repository. Seconds, not the
# minutes the full ./scripts/ci.sh pipeline takes — this is the loop to run
# before every commit; CI runs the same tools as its blocking lint/analyze
# stages, so a clean check.sh means those stages will pass.
#
#   ./scripts/check.sh           # incremental build + both tools
#   ./scripts/check.sh paths...  # restrict both tools to specific paths
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v nproc >/dev/null 2>&1; then
  JOBS="${JOBS:-$(nproc)}"
else
  JOBS="${JOBS:-2}"
fi

# Reuse the developer build tree when it exists; CI's release tree is the
# fallback so check.sh works in a fresh CI checkout too.
BUILD_DIR="build"
if [ ! -d "${BUILD_DIR}" ] && [ -d "build-ci-release" ]; then
  BUILD_DIR="build-ci-release"
fi
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target monsoon-lint monsoon-analyze >/dev/null

"./${BUILD_DIR}/tools/lint/monsoon-lint" --root . "$@"
"./${BUILD_DIR}/tools/analyze/monsoon-analyze" --root . "$@"
echo "check.sh: lint + analyze clean"
