file(REMOVE_RECURSE
  "CMakeFiles/monsoon_catalog.dir/catalog.cc.o"
  "CMakeFiles/monsoon_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/monsoon_catalog.dir/stats_store.cc.o"
  "CMakeFiles/monsoon_catalog.dir/stats_store.cc.o.d"
  "libmonsoon_catalog.a"
  "libmonsoon_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
