# Empty dependencies file for monsoon_catalog.
# This may be replaced when dependencies are built.
