file(REMOVE_RECURSE
  "libmonsoon_catalog.a"
)
