# Empty compiler generated dependencies file for monsoon_mcts.
# This may be replaced when dependencies are built.
