file(REMOVE_RECURSE
  "libmonsoon_mcts.a"
)
