file(REMOVE_RECURSE
  "CMakeFiles/monsoon_mcts.dir/mcts.cc.o"
  "CMakeFiles/monsoon_mcts.dir/mcts.cc.o.d"
  "libmonsoon_mcts.a"
  "libmonsoon_mcts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_mcts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
