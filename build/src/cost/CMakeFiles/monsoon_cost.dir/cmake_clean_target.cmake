file(REMOVE_RECURSE
  "libmonsoon_cost.a"
)
