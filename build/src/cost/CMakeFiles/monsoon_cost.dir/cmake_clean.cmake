file(REMOVE_RECURSE
  "CMakeFiles/monsoon_cost.dir/cardinality.cc.o"
  "CMakeFiles/monsoon_cost.dir/cardinality.cc.o.d"
  "libmonsoon_cost.a"
  "libmonsoon_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
