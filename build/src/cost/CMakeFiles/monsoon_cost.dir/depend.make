# Empty dependencies file for monsoon_cost.
# This may be replaced when dependencies are built.
