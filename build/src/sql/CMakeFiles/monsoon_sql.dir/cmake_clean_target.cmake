file(REMOVE_RECURSE
  "libmonsoon_sql.a"
)
