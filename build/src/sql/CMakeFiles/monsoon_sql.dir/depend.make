# Empty dependencies file for monsoon_sql.
# This may be replaced when dependencies are built.
