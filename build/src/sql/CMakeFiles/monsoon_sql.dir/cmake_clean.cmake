file(REMOVE_RECURSE
  "CMakeFiles/monsoon_sql.dir/parser.cc.o"
  "CMakeFiles/monsoon_sql.dir/parser.cc.o.d"
  "libmonsoon_sql.a"
  "libmonsoon_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
