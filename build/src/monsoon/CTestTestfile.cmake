# CMake generated Testfile for 
# Source directory: /root/repo/src/monsoon
# Build directory: /root/repo/build/src/monsoon
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
