file(REMOVE_RECURSE
  "libmonsoon_core.a"
)
