file(REMOVE_RECURSE
  "CMakeFiles/monsoon_core.dir/monsoon_optimizer.cc.o"
  "CMakeFiles/monsoon_core.dir/monsoon_optimizer.cc.o.d"
  "libmonsoon_core.a"
  "libmonsoon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
