# Empty compiler generated dependencies file for monsoon_core.
# This may be replaced when dependencies are built.
