file(REMOVE_RECURSE
  "CMakeFiles/monsoon_baselines.dir/baselines.cc.o"
  "CMakeFiles/monsoon_baselines.dir/baselines.cc.o.d"
  "libmonsoon_baselines.a"
  "libmonsoon_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
