file(REMOVE_RECURSE
  "libmonsoon_baselines.a"
)
