# Empty dependencies file for monsoon_baselines.
# This may be replaced when dependencies are built.
