file(REMOVE_RECURSE
  "libmonsoon_common.a"
)
