file(REMOVE_RECURSE
  "CMakeFiles/monsoon_common.dir/random.cc.o"
  "CMakeFiles/monsoon_common.dir/random.cc.o.d"
  "CMakeFiles/monsoon_common.dir/status.cc.o"
  "CMakeFiles/monsoon_common.dir/status.cc.o.d"
  "CMakeFiles/monsoon_common.dir/string_util.cc.o"
  "CMakeFiles/monsoon_common.dir/string_util.cc.o.d"
  "libmonsoon_common.a"
  "libmonsoon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
