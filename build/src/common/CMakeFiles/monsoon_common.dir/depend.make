# Empty dependencies file for monsoon_common.
# This may be replaced when dependencies are built.
