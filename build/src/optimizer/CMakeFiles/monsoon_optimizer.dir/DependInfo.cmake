
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/monsoon_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/monsoon_optimizer.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/monsoon_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/monsoon_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/monsoon_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/monsoon_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/monsoon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/priors/CMakeFiles/monsoon_priors.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/monsoon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
