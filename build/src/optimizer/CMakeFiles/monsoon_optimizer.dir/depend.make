# Empty dependencies file for monsoon_optimizer.
# This may be replaced when dependencies are built.
