file(REMOVE_RECURSE
  "CMakeFiles/monsoon_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/monsoon_optimizer.dir/optimizer.cc.o.d"
  "libmonsoon_optimizer.a"
  "libmonsoon_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
