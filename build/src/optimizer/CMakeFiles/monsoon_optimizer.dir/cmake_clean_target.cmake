file(REMOVE_RECURSE
  "libmonsoon_optimizer.a"
)
