file(REMOVE_RECURSE
  "libmonsoon_plan.a"
)
