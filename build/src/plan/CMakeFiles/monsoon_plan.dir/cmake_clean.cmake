file(REMOVE_RECURSE
  "CMakeFiles/monsoon_plan.dir/logical_ops.cc.o"
  "CMakeFiles/monsoon_plan.dir/logical_ops.cc.o.d"
  "CMakeFiles/monsoon_plan.dir/plan_node.cc.o"
  "CMakeFiles/monsoon_plan.dir/plan_node.cc.o.d"
  "libmonsoon_plan.a"
  "libmonsoon_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
