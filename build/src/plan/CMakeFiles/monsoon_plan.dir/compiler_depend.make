# Empty compiler generated dependencies file for monsoon_plan.
# This may be replaced when dependencies are built.
