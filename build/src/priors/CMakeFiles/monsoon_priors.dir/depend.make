# Empty dependencies file for monsoon_priors.
# This may be replaced when dependencies are built.
