file(REMOVE_RECURSE
  "CMakeFiles/monsoon_priors.dir/prior.cc.o"
  "CMakeFiles/monsoon_priors.dir/prior.cc.o.d"
  "libmonsoon_priors.a"
  "libmonsoon_priors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_priors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
