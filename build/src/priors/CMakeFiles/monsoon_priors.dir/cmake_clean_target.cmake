file(REMOVE_RECURSE
  "libmonsoon_priors.a"
)
