file(REMOVE_RECURSE
  "CMakeFiles/monsoon_storage.dir/csv.cc.o"
  "CMakeFiles/monsoon_storage.dir/csv.cc.o.d"
  "CMakeFiles/monsoon_storage.dir/schema.cc.o"
  "CMakeFiles/monsoon_storage.dir/schema.cc.o.d"
  "CMakeFiles/monsoon_storage.dir/table.cc.o"
  "CMakeFiles/monsoon_storage.dir/table.cc.o.d"
  "CMakeFiles/monsoon_storage.dir/value.cc.o"
  "CMakeFiles/monsoon_storage.dir/value.cc.o.d"
  "libmonsoon_storage.a"
  "libmonsoon_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
