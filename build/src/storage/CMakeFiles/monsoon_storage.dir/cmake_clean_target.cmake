file(REMOVE_RECURSE
  "libmonsoon_storage.a"
)
