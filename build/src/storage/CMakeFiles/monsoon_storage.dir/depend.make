# Empty dependencies file for monsoon_storage.
# This may be replaced when dependencies are built.
