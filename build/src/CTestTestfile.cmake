# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("sketch")
subdirs("expr")
subdirs("query")
subdirs("plan")
subdirs("catalog")
subdirs("cost")
subdirs("exec")
subdirs("priors")
subdirs("optimizer")
subdirs("mdp")
subdirs("mcts")
subdirs("monsoon")
subdirs("baselines")
subdirs("sql")
subdirs("workloads")
subdirs("harness")
