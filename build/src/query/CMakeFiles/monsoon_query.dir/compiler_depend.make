# Empty compiler generated dependencies file for monsoon_query.
# This may be replaced when dependencies are built.
