file(REMOVE_RECURSE
  "CMakeFiles/monsoon_query.dir/query_spec.cc.o"
  "CMakeFiles/monsoon_query.dir/query_spec.cc.o.d"
  "CMakeFiles/monsoon_query.dir/relset.cc.o"
  "CMakeFiles/monsoon_query.dir/relset.cc.o.d"
  "CMakeFiles/monsoon_query.dir/select_item.cc.o"
  "CMakeFiles/monsoon_query.dir/select_item.cc.o.d"
  "libmonsoon_query.a"
  "libmonsoon_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
