file(REMOVE_RECURSE
  "libmonsoon_query.a"
)
