# Empty dependencies file for monsoon_sketch.
# This may be replaced when dependencies are built.
