file(REMOVE_RECURSE
  "libmonsoon_sketch.a"
)
