file(REMOVE_RECURSE
  "CMakeFiles/monsoon_sketch.dir/distinct_estimator.cc.o"
  "CMakeFiles/monsoon_sketch.dir/distinct_estimator.cc.o.d"
  "CMakeFiles/monsoon_sketch.dir/hyperloglog.cc.o"
  "CMakeFiles/monsoon_sketch.dir/hyperloglog.cc.o.d"
  "CMakeFiles/monsoon_sketch.dir/sampling.cc.o"
  "CMakeFiles/monsoon_sketch.dir/sampling.cc.o.d"
  "CMakeFiles/monsoon_sketch.dir/space_saving.cc.o"
  "CMakeFiles/monsoon_sketch.dir/space_saving.cc.o.d"
  "libmonsoon_sketch.a"
  "libmonsoon_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
