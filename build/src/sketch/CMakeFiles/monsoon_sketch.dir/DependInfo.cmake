
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/distinct_estimator.cc" "src/sketch/CMakeFiles/monsoon_sketch.dir/distinct_estimator.cc.o" "gcc" "src/sketch/CMakeFiles/monsoon_sketch.dir/distinct_estimator.cc.o.d"
  "/root/repo/src/sketch/hyperloglog.cc" "src/sketch/CMakeFiles/monsoon_sketch.dir/hyperloglog.cc.o" "gcc" "src/sketch/CMakeFiles/monsoon_sketch.dir/hyperloglog.cc.o.d"
  "/root/repo/src/sketch/sampling.cc" "src/sketch/CMakeFiles/monsoon_sketch.dir/sampling.cc.o" "gcc" "src/sketch/CMakeFiles/monsoon_sketch.dir/sampling.cc.o.d"
  "/root/repo/src/sketch/space_saving.cc" "src/sketch/CMakeFiles/monsoon_sketch.dir/space_saving.cc.o" "gcc" "src/sketch/CMakeFiles/monsoon_sketch.dir/space_saving.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/monsoon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
