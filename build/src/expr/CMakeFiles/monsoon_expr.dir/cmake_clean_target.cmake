file(REMOVE_RECURSE
  "libmonsoon_expr.a"
)
