file(REMOVE_RECURSE
  "CMakeFiles/monsoon_expr.dir/udf.cc.o"
  "CMakeFiles/monsoon_expr.dir/udf.cc.o.d"
  "libmonsoon_expr.a"
  "libmonsoon_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
