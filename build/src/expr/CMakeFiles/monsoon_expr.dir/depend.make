# Empty dependencies file for monsoon_expr.
# This may be replaced when dependencies are built.
