file(REMOVE_RECURSE
  "libmonsoon_harness.a"
)
