file(REMOVE_RECURSE
  "CMakeFiles/monsoon_harness.dir/runner.cc.o"
  "CMakeFiles/monsoon_harness.dir/runner.cc.o.d"
  "libmonsoon_harness.a"
  "libmonsoon_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
