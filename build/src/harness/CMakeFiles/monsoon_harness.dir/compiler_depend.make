# Empty compiler generated dependencies file for monsoon_harness.
# This may be replaced when dependencies are built.
