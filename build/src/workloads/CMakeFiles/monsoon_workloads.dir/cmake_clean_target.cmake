file(REMOVE_RECURSE
  "libmonsoon_workloads.a"
)
