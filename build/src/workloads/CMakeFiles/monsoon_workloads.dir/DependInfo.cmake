
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/genutil.cc" "src/workloads/CMakeFiles/monsoon_workloads.dir/genutil.cc.o" "gcc" "src/workloads/CMakeFiles/monsoon_workloads.dir/genutil.cc.o.d"
  "/root/repo/src/workloads/imdb.cc" "src/workloads/CMakeFiles/monsoon_workloads.dir/imdb.cc.o" "gcc" "src/workloads/CMakeFiles/monsoon_workloads.dir/imdb.cc.o.d"
  "/root/repo/src/workloads/ott.cc" "src/workloads/CMakeFiles/monsoon_workloads.dir/ott.cc.o" "gcc" "src/workloads/CMakeFiles/monsoon_workloads.dir/ott.cc.o.d"
  "/root/repo/src/workloads/tpch.cc" "src/workloads/CMakeFiles/monsoon_workloads.dir/tpch.cc.o" "gcc" "src/workloads/CMakeFiles/monsoon_workloads.dir/tpch.cc.o.d"
  "/root/repo/src/workloads/udfbench.cc" "src/workloads/CMakeFiles/monsoon_workloads.dir/udfbench.cc.o" "gcc" "src/workloads/CMakeFiles/monsoon_workloads.dir/udfbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/monsoon_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/monsoon_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/monsoon_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/monsoon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/monsoon_query.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/monsoon_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/monsoon_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
