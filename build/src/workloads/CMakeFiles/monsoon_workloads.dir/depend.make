# Empty dependencies file for monsoon_workloads.
# This may be replaced when dependencies are built.
