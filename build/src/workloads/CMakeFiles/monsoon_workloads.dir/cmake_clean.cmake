file(REMOVE_RECURSE
  "CMakeFiles/monsoon_workloads.dir/genutil.cc.o"
  "CMakeFiles/monsoon_workloads.dir/genutil.cc.o.d"
  "CMakeFiles/monsoon_workloads.dir/imdb.cc.o"
  "CMakeFiles/monsoon_workloads.dir/imdb.cc.o.d"
  "CMakeFiles/monsoon_workloads.dir/ott.cc.o"
  "CMakeFiles/monsoon_workloads.dir/ott.cc.o.d"
  "CMakeFiles/monsoon_workloads.dir/tpch.cc.o"
  "CMakeFiles/monsoon_workloads.dir/tpch.cc.o.d"
  "CMakeFiles/monsoon_workloads.dir/udfbench.cc.o"
  "CMakeFiles/monsoon_workloads.dir/udfbench.cc.o.d"
  "libmonsoon_workloads.a"
  "libmonsoon_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
