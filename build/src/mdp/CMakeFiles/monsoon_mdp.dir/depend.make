# Empty dependencies file for monsoon_mdp.
# This may be replaced when dependencies are built.
