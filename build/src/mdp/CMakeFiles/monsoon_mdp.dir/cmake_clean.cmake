file(REMOVE_RECURSE
  "CMakeFiles/monsoon_mdp.dir/mdp.cc.o"
  "CMakeFiles/monsoon_mdp.dir/mdp.cc.o.d"
  "libmonsoon_mdp.a"
  "libmonsoon_mdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_mdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
