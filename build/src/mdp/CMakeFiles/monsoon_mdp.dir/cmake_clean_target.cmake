file(REMOVE_RECURSE
  "libmonsoon_mdp.a"
)
