
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/monsoon_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/monsoon_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/materialized_store.cc" "src/exec/CMakeFiles/monsoon_exec.dir/materialized_store.cc.o" "gcc" "src/exec/CMakeFiles/monsoon_exec.dir/materialized_store.cc.o.d"
  "/root/repo/src/exec/projection.cc" "src/exec/CMakeFiles/monsoon_exec.dir/projection.cc.o" "gcc" "src/exec/CMakeFiles/monsoon_exec.dir/projection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/monsoon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/monsoon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/monsoon_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/monsoon_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/monsoon_query.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/monsoon_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/monsoon_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
