file(REMOVE_RECURSE
  "libmonsoon_exec.a"
)
