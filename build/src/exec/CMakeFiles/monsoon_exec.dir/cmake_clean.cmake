file(REMOVE_RECURSE
  "CMakeFiles/monsoon_exec.dir/executor.cc.o"
  "CMakeFiles/monsoon_exec.dir/executor.cc.o.d"
  "CMakeFiles/monsoon_exec.dir/materialized_store.cc.o"
  "CMakeFiles/monsoon_exec.dir/materialized_store.cc.o.d"
  "CMakeFiles/monsoon_exec.dir/projection.cc.o"
  "CMakeFiles/monsoon_exec.dir/projection.cc.o.d"
  "libmonsoon_exec.a"
  "libmonsoon_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
