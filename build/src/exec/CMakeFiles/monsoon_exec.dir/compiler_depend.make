# Empty compiler generated dependencies file for monsoon_exec.
# This may be replaced when dependencies are built.
