# Empty dependencies file for adaptive_reoptimization.
# This may be replaced when dependencies are built.
