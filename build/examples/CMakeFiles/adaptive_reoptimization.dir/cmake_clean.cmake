file(REMOVE_RECURSE
  "CMakeFiles/adaptive_reoptimization.dir/adaptive_reoptimization.cpp.o"
  "CMakeFiles/adaptive_reoptimization.dir/adaptive_reoptimization.cpp.o.d"
  "adaptive_reoptimization"
  "adaptive_reoptimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_reoptimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
