
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/monsoon/CMakeFiles/monsoon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/monsoon_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/monsoon_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/monsoon_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/monsoon_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/mcts/CMakeFiles/monsoon_mcts.dir/DependInfo.cmake"
  "/root/repo/build/src/mdp/CMakeFiles/monsoon_mdp.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/monsoon_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/monsoon_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/priors/CMakeFiles/monsoon_priors.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/monsoon_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/monsoon_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/monsoon_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/monsoon_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/monsoon_query.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/monsoon_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/monsoon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/monsoon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
