# Empty compiler generated dependencies file for monsoon_test.
# This may be replaced when dependencies are built.
