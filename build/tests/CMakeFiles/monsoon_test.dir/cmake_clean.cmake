file(REMOVE_RECURSE
  "CMakeFiles/monsoon_test.dir/monsoon_test.cc.o"
  "CMakeFiles/monsoon_test.dir/monsoon_test.cc.o.d"
  "monsoon_test"
  "monsoon_test.pdb"
  "monsoon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsoon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
