# Empty dependencies file for mcts_test.
# This may be replaced when dependencies are built.
