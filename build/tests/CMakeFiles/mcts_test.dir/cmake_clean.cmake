file(REMOVE_RECURSE
  "CMakeFiles/mcts_test.dir/mcts_test.cc.o"
  "CMakeFiles/mcts_test.dir/mcts_test.cc.o.d"
  "mcts_test"
  "mcts_test.pdb"
  "mcts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
