# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sketch_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/stats_store_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/priors_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/mdp_test[1]_include.cmake")
include("/root/repo/build/tests/mcts_test[1]_include.cmake")
include("/root/repo/build/tests/monsoon_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/space_saving_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/projection_test[1]_include.cmake")
