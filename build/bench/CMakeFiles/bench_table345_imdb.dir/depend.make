# Empty dependencies file for bench_table345_imdb.
# This may be replaced when dependencies are built.
