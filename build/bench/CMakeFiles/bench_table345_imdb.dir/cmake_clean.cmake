file(REMOVE_RECURSE
  "CMakeFiles/bench_table345_imdb.dir/bench_table345_imdb.cpp.o"
  "CMakeFiles/bench_table345_imdb.dir/bench_table345_imdb.cpp.o.d"
  "bench_table345_imdb"
  "bench_table345_imdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table345_imdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
