file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_monsoon.dir/bench_ablation_monsoon.cpp.o"
  "CMakeFiles/bench_ablation_monsoon.dir/bench_ablation_monsoon.cpp.o.d"
  "bench_ablation_monsoon"
  "bench_ablation_monsoon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_monsoon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
