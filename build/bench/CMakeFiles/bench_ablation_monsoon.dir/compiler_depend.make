# Empty compiler generated dependencies file for bench_ablation_monsoon.
# This may be replaced when dependencies are built.
