file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mdp_walk.dir/bench_fig1_mdp_walk.cpp.o"
  "CMakeFiles/bench_fig1_mdp_walk.dir/bench_fig1_mdp_walk.cpp.o.d"
  "bench_fig1_mdp_walk"
  "bench_fig1_mdp_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mdp_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
