# Empty dependencies file for bench_table7_fig3_udf.
# This may be replaced when dependencies are built.
