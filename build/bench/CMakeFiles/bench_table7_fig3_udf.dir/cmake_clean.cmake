file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_fig3_udf.dir/bench_table7_fig3_udf.cpp.o"
  "CMakeFiles/bench_table7_fig3_udf.dir/bench_table7_fig3_udf.cpp.o.d"
  "bench_table7_fig3_udf"
  "bench_table7_fig3_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_fig3_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
