# Empty dependencies file for bench_fig2_priors.
# This may be replaced when dependencies are built.
