file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_prior_choice.dir/bench_table2_prior_choice.cpp.o"
  "CMakeFiles/bench_table2_prior_choice.dir/bench_table2_prior_choice.cpp.o.d"
  "bench_table2_prior_choice"
  "bench_table2_prior_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_prior_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
