# Empty compiler generated dependencies file for bench_table2_prior_choice.
# This may be replaced when dependencies are built.
