file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_ott.dir/bench_table6_ott.cpp.o"
  "CMakeFiles/bench_table6_ott.dir/bench_table6_ott.cpp.o.d"
  "bench_table6_ott"
  "bench_table6_ott.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_ott.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
